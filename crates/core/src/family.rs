//! The unified index-family framework (paper §3.1) and the two indexing
//! problems it solves (paper §2.3).
//!
//! Every index over the 4-ary relation `(HeadId, SchemaPath, LeafValue,
//! IdList)` is characterized by three choices (Fig. 3):
//!
//! 1. which subset of schema paths it stores,
//! 2. which sublist of each IdList it returns,
//! 3. which columns it indexes (i.e., what a single B+-tree probe can
//!    constrain).
//!
//! The [`FreeIndex`] and [`BoundIndex`] traits are the paper's two
//! problems: return all matches of a PCsubpath pattern in one index
//! lookup, optionally rooted at a given node id.

use xtwig_xml::{TagDict, TagId};

/// Which subset of the 4-ary relation's schema paths an index stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaPathSubset {
    /// Paths of length 1 only (Lore value/link indexes).
    Length1,
    /// All prefixes of root-to-leaf paths (DataGuide, ROOTPATHS).
    RootToLeafPrefixes,
    /// Full root-to-leaf paths only (Index Fabric).
    RootToLeaf,
    /// Every subpath of every root-to-leaf path (DATAPATHS).
    AllSubpaths,
}

/// Which sublist of each IdList an index returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdListSublist {
    /// Only the last id (value index, link index, DataGuide).
    LastOnly,
    /// First or last id (Index Fabric).
    FirstOrLast,
    /// The complete IdList (ROOTPATHS, DATAPATHS) — the extension that
    /// makes branch-point ids available without joins.
    Full,
}

/// A column an index key can constrain in one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexedColumn {
    /// The id the data path starts at.
    HeadId,
    /// The forward schema path.
    SchemaPath,
    /// The reversed schema path (enables `//`-prefix probes, §3.2).
    ReverseSchemaPath,
    /// The leaf value.
    LeafValue,
}

/// An index's coordinates in the family (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyPosition {
    /// Stored schema paths.
    pub schema_paths: SchemaPathSubset,
    /// Returned IdList sublist.
    pub idlist: IdListSublist,
    /// Columns constrained by one probe, in key order.
    pub indexed: Vec<IndexedColumn>,
}

/// Longest leaf-value prefix stored inside index keys. Longer values are
/// prefix-indexed and re-checked against the forest by the executor
/// (commercial systems bound key size the same way; DB2 limits index keys
/// to ~1 KB).
pub const VALUE_KEY_PREFIX_BYTES: usize = 96;

/// Truncates `v` to the indexed prefix at a char boundary.
pub fn value_key_prefix(v: &str) -> &str {
    if v.len() <= VALUE_KEY_PREFIX_BYTES {
        return v;
    }
    let mut end = VALUE_KEY_PREFIX_BYTES;
    while !v.is_char_boundary(end) {
        end -= 1;
    }
    &v[..end]
}

/// True when an equality on `v` cannot be decided by the key prefix alone.
pub fn value_needs_recheck(v: &str) -> bool {
    v.len() > VALUE_KEY_PREFIX_BYTES
}

/// A PCsubpath pattern (paper §2.2): a chain of parent-child steps, a
/// permitted leading `//`, and an optional equality predicate on the leaf
/// value of the final step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PcSubpathQuery {
    /// Step tags, root-most first.
    pub tags: Vec<TagId>,
    /// True when the first step is anchored at a document root (`/a/…`);
    /// false for a leading `//`.
    pub anchored: bool,
    /// Equality predicate on the final step's leaf value.
    pub value: Option<String>,
}

impl PcSubpathQuery {
    /// Resolves textual step names against `dict`. Returns `None` when a
    /// tag does not occur in the data (the pattern then has no matches).
    pub fn resolve(
        dict: &TagDict,
        steps: &[&str],
        anchored: bool,
        value: Option<&str>,
    ) -> Option<Self> {
        let tags = steps.iter().map(|s| dict.lookup(s)).collect::<Option<Vec<_>>>()?;
        Some(PcSubpathQuery { tags, anchored, value: value.map(str::to_owned) })
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True for a pattern with no steps (not produced by constructors).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// One data path returned by an index lookup.
///
/// `tags[i]` / `ids[i]` are aligned; for a [`FreeIndex`] lookup they span
/// the document root down to the matched leaf step, for a [`BoundIndex`]
/// lookup they span the *head node* (`tags[0]`, `ids[0]`) down to the
/// matched step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathMatch {
    /// Head the lookup was rooted at (0 = virtual root / free lookup).
    pub head: u64,
    /// Schema path of the returned data path.
    pub tags: Vec<TagId>,
    /// The IdList (aligned with `tags`).
    pub ids: Vec<u64>,
}

impl PathMatch {
    /// Id bound to the final step of the query.
    pub fn last_id(&self) -> u64 {
        *self.ids.last().expect("empty PathMatch")
    }

    /// Id bound to the `k`-th step from the end (0 = final step). This is
    /// how branch-point ids are extracted from IdLists (paper §3.2).
    pub fn id_from_end(&self, k: usize) -> u64 {
        self.ids[self.ids.len() - 1 - k]
    }

    /// Path length in steps.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for an empty match (never produced by lookups).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Metadata shared by every family member.
pub trait PathIndex {
    /// Display name (matches the paper's abbreviations: RP, DP, …).
    fn name(&self) -> &'static str;

    /// Position in the unified framework (Fig. 3).
    fn family_position(&self) -> FamilyPosition;

    /// Allocated bytes (Fig. 9's space metric).
    fn space_bytes(&self) -> u64;
}

/// Problem FreeIndex (paper §2.3): all n-tuples of node ids matching a
/// PCsubpath pattern, in a single index lookup.
pub trait FreeIndex: PathIndex {
    /// Looks up all matches of `q`.
    fn lookup_free(&self, q: &PcSubpathQuery) -> Vec<PathMatch>;
}

/// Problem BoundIndex (paper §2.3): all matches of a PCsubpath pattern
/// rooted at a given node id, in a single index lookup. Enables the
/// index-nested-loop join strategy.
pub trait BoundIndex: FreeIndex {
    /// Looks up matches of `q` among paths descending from `head`
    /// (`head_tag` = its tag). `q.anchored == false` means the first step
    /// may be any *proper* descendant of `head`; `q.anchored == true`
    /// requires it to be a child of `head`.
    fn lookup_bound(&self, head: u64, head_tag: TagId, q: &PcSubpathQuery) -> Vec<PathMatch>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_prefix_truncation_respects_char_boundaries() {
        let short = "united states";
        assert_eq!(value_key_prefix(short), short);
        assert!(!value_needs_recheck(short));
        let long: String = "é".repeat(100); // 2 bytes each
        let p = value_key_prefix(&long);
        assert!(p.len() <= VALUE_KEY_PREFIX_BYTES);
        assert!(p.len() >= VALUE_KEY_PREFIX_BYTES - 3);
        assert!(long.starts_with(p));
        assert!(value_needs_recheck(&long));
    }

    #[test]
    fn resolve_fails_on_unknown_tags() {
        let mut dict = TagDict::new();
        dict.intern("book");
        dict.intern("title");
        assert!(PcSubpathQuery::resolve(&dict, &["book", "title"], true, Some("XML")).is_some());
        assert!(PcSubpathQuery::resolve(&dict, &["book", "nosuch"], true, None).is_none());
    }

    #[test]
    fn path_match_position_helpers() {
        let m = PathMatch { head: 0, tags: vec![TagId(1), TagId(2), TagId(3)], ids: vec![1, 5, 6] };
        assert_eq!(m.last_id(), 6);
        assert_eq!(m.id_from_end(0), 6);
        assert_eq!(m.id_from_end(1), 5);
        assert_eq!(m.id_from_end(2), 1);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn family_positions_of_existing_indices_match_fig3() {
        // The Fig. 3 rows, expressed as data. Each index implementation's
        // family_position() is asserted against these in its own module;
        // here we pin the reference values themselves.
        let value_index = FamilyPosition {
            schema_paths: SchemaPathSubset::Length1,
            idlist: IdListSublist::LastOnly,
            indexed: vec![IndexedColumn::SchemaPath, IndexedColumn::LeafValue],
        };
        let rootpaths = FamilyPosition {
            schema_paths: SchemaPathSubset::RootToLeafPrefixes,
            idlist: IdListSublist::Full,
            indexed: vec![IndexedColumn::LeafValue, IndexedColumn::ReverseSchemaPath],
        };
        let datapaths = FamilyPosition {
            schema_paths: SchemaPathSubset::AllSubpaths,
            idlist: IdListSublist::Full,
            indexed: vec![
                IndexedColumn::HeadId,
                IndexedColumn::LeafValue,
                IndexedColumn::ReverseSchemaPath,
            ],
        };
        assert_ne!(value_index, rootpaths);
        assert_ne!(rootpaths, datapaths);
        assert_eq!(datapaths.indexed[0], IndexedColumn::HeadId);
    }
}
