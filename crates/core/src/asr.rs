//! Access Support Relations (paper §5.1.2, §5.2.6, [Kemper/Moerkotte]).
//!
//! ASRs materialize path instantiations as relations — one table per
//! path expression, with one column per node along the path. Following
//! the paper, we materialize **all distinct root-anchored schema paths**
//! present in the data (ad hoc queries preclude workload-driven
//! selection), giving 902 tables for XMark and 235 for DBLP at paper
//! scale.
//!
//! Each table is realized as a B+-tree keyed on `(LeafValue, last id)`
//! with the node-id columns as payload. Two properties measured in §5.2.6
//! follow from the design:
//!
//! * a `//` pattern matching *m* distinct schema paths must open *m*
//!   separate tables (cost linear in *m*, vs. one probe for DATAPATHS);
//! * id columns are separate attributes, so the differential IdList
//!   compression of §4.1 does not apply (we store ids uncompressed).

use crate::family::{
    value_key_prefix, FamilyPosition, IdListSublist, IndexedColumn, PathIndex, PathMatch,
    PcSubpathQuery, SchemaPathSubset,
};
use crate::parallel::{map_shards, ShardPlan};
use crate::paths::for_each_root_path_in;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtwig_btree::{bulk_build, merge_sorted_runs, BTree, BTreeOptions};
use xtwig_rel::codec::{self, IdListCodec, KeyBuf};
use xtwig_storage::BufferPool;
use xtwig_xml::{TagId, XmlForest};

/// The full set of per-path Access Support Relations.
pub struct AccessSupportRelations {
    tables: HashMap<Vec<TagId>, BTree>,
    lookups: AtomicU64,
}

impl AccessSupportRelations {
    /// Materializes one ASR per distinct root-anchored schema path.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>) -> Self {
        Self::build_sharded(forest, pool, &ShardPlan::sequential(forest))
    }

    /// Shard-parallel [`Self::build`]: workers group and sort their own
    /// shard's rows per path; tables are then bulk-loaded from the
    /// merged runs **in sorted path order**, so page allocation — and
    /// the pool image — is deterministic regardless of shard count (the
    /// pre-sharding builder iterated a `HashMap` here, which made even
    /// two sequential builds lay out pages differently).
    pub fn build_sharded(forest: &XmlForest, pool: Arc<BufferPool>, plan: &ShardPlan) -> Self {
        type Entries = Vec<(Vec<u8>, Vec<u8>)>;
        let mut shard_groups: Vec<HashMap<Vec<TagId>, Entries>> = map_shards(plan, |range| {
            let mut grouped: HashMap<Vec<TagId>, Entries> = HashMap::new();
            for_each_root_path_in(forest, range, |tags, ids, value| {
                let mut key = KeyBuf::new();
                match value {
                    None => {
                        key.push_null();
                    }
                    Some(v) => {
                        key.push_str(value_key_prefix(v));
                    }
                }
                key.push_u64(*ids.last().unwrap());
                grouped.entry(tags.to_vec()).or_default().push((
                    key.finish(),
                    // Ids as separate columns -> no delta compression (§5.2.6).
                    codec::encode_idlist(IdListCodec::Plain, ids),
                ));
            });
            for run in grouped.values_mut() {
                run.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            }
            grouped
        });
        let mut paths: Vec<Vec<TagId>> =
            shard_groups.iter().flat_map(|g| g.keys().cloned()).collect();
        paths.sort_unstable();
        paths.dedup();
        let mut tables = HashMap::with_capacity(paths.len());
        for path in paths {
            let runs: Vec<Entries> =
                shard_groups.iter_mut().filter_map(|g| g.remove(&path)).collect();
            tables.insert(
                path,
                bulk_build(pool.clone(), BTreeOptions::default(), merge_sorted_runs(runs)),
            );
        }
        AccessSupportRelations { tables, lookups: AtomicU64::new(0) }
    }

    /// Number of materialized tables (paper: 902 XMark / 235 DBLP).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Index probes issued since the last call.
    pub fn take_lookups(&self) -> u64 {
        self.lookups.swap(0, Ordering::Relaxed)
    }

    /// Aggregate physical shape of the per-path tables, for the
    /// optimizer's catalog (see [`crate::auto`]).
    pub fn cost_profile(&self) -> xtwig_opt::TableSetProfile {
        let mut p =
            xtwig_opt::TableSetProfile { tables: self.tables.len() as u64, ..Default::default() };
        for tree in self.tables.values() {
            let s = tree.stats();
            p.pages += s.pages;
            p.rows += s.entries;
            p.height = p.height.max(s.height.saturating_sub(1));
        }
        p
    }

    /// The distinct stored paths matching a pattern: the exact path when
    /// anchored, every path with the pattern as suffix otherwise.
    pub fn matching_paths(&self, q: &PcSubpathQuery) -> Vec<&Vec<TagId>> {
        if q.anchored {
            self.tables.get_key_value(&q.tags).map(|(k, _)| k).into_iter().collect()
        } else {
            self.tables.keys().filter(|p| p.ends_with(&q.tags)).collect()
        }
    }

    /// Evaluates a PCsubpath: one indexed probe per matching table.
    /// Matches carry the full root IdList (ASR rows are complete path
    /// instantiations).
    pub fn eval_pcsubpath(&self, q: &PcSubpathQuery) -> Vec<PathMatch> {
        let paths: Vec<Vec<TagId>> = self.matching_paths(q).into_iter().cloned().collect();
        let mut out = Vec::new();
        for path in paths {
            let tree = &self.tables[&path];
            self.lookups.fetch_add(1, Ordering::Relaxed);
            let mut prefix = KeyBuf::new();
            match &q.value {
                None => {
                    prefix.push_null();
                }
                Some(v) => {
                    prefix.push_str(value_key_prefix(v));
                }
            }
            for (_k, payload) in tree.scan_prefix(prefix.as_bytes()) {
                let ids = codec::decode_idlist(IdListCodec::Plain, &payload);
                out.push(PathMatch { head: 0, tags: path.clone(), ids });
            }
        }
        out
    }
}

impl AccessSupportRelations {
    /// Writes the catalog metadata a reopen needs (see
    /// [`crate::persist`]): every per-path table's key and tree shape,
    /// in sorted path order (deterministic catalog bytes).
    pub(crate) fn write_meta(&self, w: &mut crate::persist::ByteWriter) {
        let mut paths: Vec<&Vec<TagId>> = self.tables.keys().collect();
        paths.sort_unstable();
        w.push_u32(paths.len() as u32);
        for path in paths {
            crate::persist::write_tag_path(w, path);
            crate::persist::write_tree_meta(w, &self.tables[path]);
        }
    }

    /// Reattaches persisted Access Support Relations over `pool`.
    pub(crate) fn open_meta(
        r: &mut crate::persist::ByteReader<'_>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, crate::persist::FormatError> {
        let n = r.u32()? as usize;
        let mut tables = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let path = crate::persist::read_tag_path(r)?;
            let tree = crate::persist::read_tree_meta(r, pool.clone())?;
            if tables.insert(path, tree).is_some() {
                return crate::persist::format_err("duplicate ASR table path");
            }
        }
        Ok(AccessSupportRelations { tables, lookups: AtomicU64::new(0) })
    }
}

impl PathIndex for AccessSupportRelations {
    fn name(&self) -> &'static str {
        "ASR"
    }

    /// ASRs sit outside Fig. 3's single-index rows: schema is encoded as
    /// *relation names* (one table per path) rather than as an indexed
    /// column. The closest family description: root-to-leaf prefixes with
    /// full IdLists, value-indexed only.
    fn family_position(&self) -> FamilyPosition {
        FamilyPosition {
            schema_paths: SchemaPathSubset::RootToLeafPrefixes,
            idlist: IdListSublist::Full,
            indexed: vec![IndexedColumn::LeafValue],
        }
    }

    fn space_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.space_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn build(f: &XmlForest) -> AccessSupportRelations {
        AccessSupportRelations::build(f, Arc::new(BufferPool::in_memory(8192)))
    }

    fn q(f: &XmlForest, steps: &[&str], anchored: bool, value: Option<&str>) -> PcSubpathQuery {
        PcSubpathQuery::resolve(f.dict(), steps, anchored, value).unwrap()
    }

    #[test]
    fn one_table_per_distinct_path() {
        let f = fig1_book_document();
        let asr = build(&f);
        let stats = crate::paths::PathStats::build(&f);
        assert_eq!(asr.table_count(), stats.distinct_schema_paths());
    }

    #[test]
    fn anchored_query_probes_one_table() {
        let f = fig1_book_document();
        let asr = build(&f);
        let ms = asr.eval_pcsubpath(&q(&f, &["book", "title"], true, Some("XML")));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].ids, vec![1, 2]);
        assert_eq!(asr.take_lookups(), 1);
    }

    #[test]
    fn recursive_query_probes_many_tables() {
        let f = fig1_book_document();
        let asr = build(&f);
        // //title matches two distinct schema paths: book/title and
        // book/chapter/title -> two table accesses (the §5.2.6 effect).
        let ms = asr.eval_pcsubpath(&q(&f, &["title"], false, None));
        let mut last: Vec<u64> = ms.iter().map(|m| m.last_id()).collect();
        last.sort_unstable();
        assert_eq!(last, vec![2, 48]);
        assert_eq!(asr.take_lookups(), 2);
    }

    #[test]
    fn matches_carry_full_idlists() {
        let f = fig1_book_document();
        let asr = build(&f);
        let ms = asr.eval_pcsubpath(&q(&f, &["author", "fn"], false, Some("jane")));
        let mut lists: Vec<Vec<u64>> = ms.iter().map(|m| m.ids.clone()).collect();
        lists.sort();
        assert_eq!(lists, vec![vec![1, 5, 6, 7], vec![1, 5, 41, 42]]);
    }

    #[test]
    fn missing_path_yields_empty() {
        let f = fig1_book_document();
        let asr = build(&f);
        assert!(asr.eval_pcsubpath(&q(&f, &["author", "title"], false, None)).is_empty());
        assert_eq!(asr.take_lookups(), 0, "no table matches, no probes");
    }

    #[test]
    fn space_exceeds_a_page_per_table() {
        let f = fig1_book_document();
        let asr = build(&f);
        assert!(asr.space_bytes() >= asr.table_count() as u64 * 8192);
    }
}
