//! Space optimizations (paper §4).
//!
//! Three techniques, measured in §5.2.5:
//!
//! * **Differential IdList encoding** (lossless, §4.1) — implemented in
//!   `xtwig_rel::codec` and selected through
//!   [`RootPathsOptions::idlist`](crate::rootpaths::RootPathsOptions)/
//!   [`DataPathsOptions::idlist`](crate::datapaths::DataPathsOptions).
//!   [`measure_idlist_bytes`] quantifies the saving without building
//!   trees.
//! * **SchemaPath dictionary compression** (lossy, §4.2) —
//!   [`DictDataPaths`] replaces the reversed designator path in the key
//!   with an indivisible path id. Keys shrink, but "one can no longer
//!   match a PCsubpath pattern that begins with a `//`": only exact
//!   (anchored) probes remain possible.
//! * **HeadId pruning** (lossy, §4.3) — implemented by
//!   [`DataPaths::build_filtered`](crate::datapaths::DataPaths::build_filtered);
//!   [`workload_head_filter`] derives the retained head tags from a
//!   query workload.

use crate::family::{value_key_prefix, PathMatch};
use crate::paths::{for_each_root_path, for_each_subpath};
use crate::rootpaths::{push_value_part, skip_value_part};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use xtwig_btree::{bulk_build, BTree, BTreeOptions};
use xtwig_rel::codec::{self, IdListCodec, KeyBuf};
use xtwig_storage::BufferPool;
use xtwig_xml::{TagId, TwigPattern, XmlForest};

/// Total encoded IdList bytes for both indexes under both codecs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdListBytes {
    /// ROOTPATHS rows, delta codec.
    pub rootpaths_delta: u64,
    /// ROOTPATHS rows, plain 8-byte ids.
    pub rootpaths_plain: u64,
    /// DATAPATHS rows, delta codec.
    pub datapaths_delta: u64,
    /// DATAPATHS rows, plain 8-byte ids.
    pub datapaths_plain: u64,
}

impl IdListBytes {
    /// Fractional saving of delta over plain for DATAPATHS (the paper
    /// reports "about 30%" across its lossless schemes).
    pub fn datapaths_saving(&self) -> f64 {
        if self.datapaths_plain == 0 {
            0.0
        } else {
            1.0 - self.datapaths_delta as f64 / self.datapaths_plain as f64
        }
    }
}

/// Measures encoded IdList bytes without building any tree.
pub fn measure_idlist_bytes(forest: &XmlForest) -> IdListBytes {
    let mut out = IdListBytes::default();
    for_each_root_path(forest, |_tags, ids, _value| {
        out.rootpaths_delta += codec::encode_idlist(IdListCodec::Delta, ids).len() as u64;
        out.rootpaths_plain += codec::encode_idlist(IdListCodec::Plain, ids).len() as u64;
    });
    for_each_subpath(forest, |_head, _tags, ids, _value| {
        out.datapaths_delta += codec::encode_idlist(IdListCodec::Delta, &ids[1..]).len() as u64;
        out.datapaths_plain += codec::encode_idlist(IdListCodec::Plain, &ids[1..]).len() as u64;
    });
    out
}

/// Derives the §4.3 head filter from a workload: the set of tags that
/// appear as branch points (or segment roots under a `//` edge) in any
/// workload query. DATAPATHS rows headed at other tags can be pruned
/// without affecting the workload's INLJ plans.
pub fn workload_head_filter(workload: &[TwigPattern]) -> HashSet<String> {
    let mut tags = HashSet::new();
    for twig in workload {
        for &bp in &twig.branch_points() {
            tags.insert(twig.nodes[bp].tag.clone());
        }
        // Upper endpoints of // edges also serve as probe heads.
        for node in &twig.nodes {
            for &(axis, child) in &node.children {
                if axis == xtwig_xml::Axis::Descendant {
                    tags.insert(node.tag.clone());
                    let _ = child;
                }
            }
        }
    }
    tags
}

/// DATAPATHS with dictionary-compressed schema paths (paper §4.2,
/// Fig. 6): the key stores an indivisible `SchemaPathId` instead of the
/// reversed designator sequence.
pub struct DictDataPaths {
    tree: BTree,
    /// `(path tags from head) -> path id`.
    path_dict: HashMap<Vec<TagId>, u32>,
    idlist: IdListCodec,
}

impl DictDataPaths {
    /// Builds the dictionary-compressed variant.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>) -> Self {
        let idlist = IdListCodec::Delta;
        let mut path_dict: HashMap<Vec<TagId>, u32> = HashMap::new();
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let intern = |tags: &[TagId], dict: &mut HashMap<Vec<TagId>, u32>| -> u32 {
            if let Some(&id) = dict.get(tags) {
                id
            } else {
                let id = dict.len() as u32;
                dict.insert(tags.to_vec(), id);
                id
            }
        };
        for_each_root_path(forest, |tags, ids, value| {
            let pid = intern(tags, &mut path_dict);
            entries.push(Self::encode_row(idlist, 0, pid, ids, ids, value));
        });
        for_each_subpath(forest, |head, tags, ids, value| {
            let pid = intern(tags, &mut path_dict);
            entries.push(Self::encode_row(idlist, head, pid, ids, &ids[1..], value));
        });
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let tree = bulk_build(pool, BTreeOptions::default(), entries);
        DictDataPaths { tree, path_dict, idlist }
    }

    fn encode_row(
        idlist: IdListCodec,
        head: u64,
        pid: u32,
        ids: &[u64],
        stored: &[u64],
        value: Option<&str>,
    ) -> (Vec<u8>, Vec<u8>) {
        let mut key = KeyBuf::new();
        key.push_u64(head);
        push_value_part(&mut key, value);
        // Fixed-width raw path id: the component position is fixed in
        // this layout, so no type byte or terminator is needed — this is
        // where the §4.2 space saving comes from.
        key.push_raw(&pid.to_be_bytes());
        key.push_u64(*ids.last().unwrap());
        (key.finish(), codec::encode_idlist(idlist, stored))
    }

    /// Number of distinct schema paths in the dictionary (the paper cites
    /// 235 for DBLP, 902 for XMark as root paths; this dictionary also
    /// holds interior subpaths).
    pub fn dict_len(&self) -> usize {
        self.path_dict.len()
    }

    /// Exact-path FreeIndex lookup (anchored only: the path id is
    /// indivisible, so `//` patterns are unanswerable — §4.2's loss).
    pub fn lookup_exact_free(&self, tags: &[TagId], value: Option<&str>) -> Vec<PathMatch> {
        self.lookup(0, tags, value)
    }

    /// Exact-path BoundIndex lookup: `tags` is the full path from the
    /// head (inclusive).
    pub fn lookup_exact_bound(
        &self,
        head: u64,
        tags: &[TagId],
        value: Option<&str>,
    ) -> Vec<PathMatch> {
        self.lookup(head, tags, value)
    }

    fn lookup(&self, head: u64, tags: &[TagId], value: Option<&str>) -> Vec<PathMatch> {
        let Some(&pid) = self.path_dict.get(tags) else { return Vec::new() };
        let mut key = KeyBuf::new();
        key.push_u64(head);
        match value {
            None => {
                key.push_null();
            }
            Some(v) => {
                key.push_str(value_key_prefix(v));
            }
        }
        key.push_raw(&pid.to_be_bytes());
        self.tree
            .scan_prefix(key.as_bytes())
            .map(|(k, payload)| {
                let (_value, _pos) = skip_value_part(&k, 9);
                let stored = codec::decode_idlist(self.idlist, &payload);
                let ids = if head == 0 {
                    stored
                } else {
                    let mut ids = Vec::with_capacity(stored.len() + 1);
                    ids.push(head);
                    ids.extend_from_slice(&stored);
                    ids
                };
                PathMatch { head, tags: tags.to_vec(), ids }
            })
            .collect()
    }

    /// Allocated bytes.
    pub fn space_bytes(&self) -> u64 {
        self.tree.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapaths::{DataPaths, DataPathsOptions};
    use crate::family::PathIndex;
    use crate::xpath::parse_xpath;
    use xtwig_xml::tree::fig1_book_document;

    #[test]
    fn delta_saves_bytes_on_deep_documents() {
        let f = fig1_book_document();
        let b = measure_idlist_bytes(&f);
        assert!(b.rootpaths_delta < b.rootpaths_plain);
        assert!(b.datapaths_delta < b.datapaths_plain);
        assert!(b.datapaths_saving() > 0.2, "saving {}", b.datapaths_saving());
    }

    #[test]
    fn dict_variant_answers_exact_paths() {
        let f = fig1_book_document();
        let dd = DictDataPaths::build(&f, Arc::new(BufferPool::in_memory(8192)));
        let tags: Vec<TagId> = ["book", "allauthors", "author", "fn"]
            .iter()
            .map(|t| f.dict().lookup(t).unwrap())
            .collect();
        let ms = dd.lookup_exact_free(&tags, Some("jane"));
        let mut lists: Vec<Vec<u64>> = ms.iter().map(|m| m.ids.clone()).collect();
        lists.sort();
        assert_eq!(lists, vec![vec![1, 5, 6, 7], vec![1, 5, 41, 42]]);
        // Bound probe: author/ln under allauthors head 5.
        let bound_tags: Vec<TagId> =
            ["allauthors", "author", "ln"].iter().map(|t| f.dict().lookup(t).unwrap()).collect();
        let ms = dd.lookup_exact_bound(5, &bound_tags, Some("doe"));
        let mut lists: Vec<Vec<u64>> = ms.iter().map(|m| m.ids.clone()).collect();
        lists.sort();
        assert_eq!(lists, vec![vec![5, 21, 25], vec![5, 41, 45]]);
    }

    #[test]
    fn dict_variant_cannot_do_recursion() {
        // §4.2: a suffix pattern has no path id — the lookup API only
        // accepts exact paths, and an unknown path returns nothing.
        let f = fig1_book_document();
        let dd = DictDataPaths::build(&f, Arc::new(BufferPool::in_memory(8192)));
        let suffix: Vec<TagId> =
            ["author", "fn"].iter().map(|t| f.dict().lookup(t).unwrap()).collect();
        assert!(dd.lookup_exact_free(&suffix, Some("jane")).is_empty());
    }

    #[test]
    fn dict_variant_is_smaller_than_reverse_paths() {
        let f = fig1_book_document();
        let dd = DictDataPaths::build(&f, Arc::new(BufferPool::in_memory(8192)));
        let dp = DataPaths::build(
            &f,
            Arc::new(BufferPool::in_memory(8192)),
            DataPathsOptions::default(),
        );
        assert!(dd.space_bytes() <= dp.space_bytes());
        assert!(dd.dict_len() > 0);
    }

    #[test]
    fn workload_filter_collects_branch_tags() {
        let w = vec![
            parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap(),
            parse_xpath("/site/open_auctions/open_auction[bidder]/seller").unwrap(),
        ];
        let tags = workload_head_filter(&w);
        assert!(tags.contains("book")); // branch + // upper endpoint
        assert!(tags.contains("author")); // branch point
        assert!(tags.contains("open_auction")); // branch point
        assert!(!tags.contains("seller"));
    }
}
