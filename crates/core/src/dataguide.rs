//! Simulated DataGuide (paper §5.1.2, [Goldman/Widom]).
//!
//! The DataGuide maps every root-to-leaf **prefix** schema path to the
//! ids of its final elements — structure only, no values. The paper
//! simulates it with a regular B+-tree (Patricia tries are not available
//! in commercial systems); we do the same: keys are forward designator
//! paths, one entry per instance.
//!
//! Because paths are stored forward and values are not indexed, a valued
//! query needs a separate value-index lookup plus a join (§5.2.1's
//! DG+Edge strategy), and `//` patterns cannot be answered by the
//! DataGuide at all (suffix match over forward keys) — those fall back
//! to the Edge chain in the engine.

use crate::designator;
use crate::family::{FamilyPosition, IdListSublist, IndexedColumn, PathIndex, SchemaPathSubset};
use crate::parallel::{map_shards, ShardPlan};
use crate::paths::for_each_root_path_in;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtwig_btree::{bulk_build, merge_sorted_runs, BTree, BTreeOptions};
use xtwig_rel::codec::KeyBuf;
use xtwig_storage::BufferPool;
use xtwig_xml::{TagId, XmlForest};

/// The simulated DataGuide index.
pub struct DataGuide {
    tree: BTree,
    lookups: AtomicU64,
}

impl DataGuide {
    /// Builds the DataGuide from `forest` into `pool`.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>) -> Self {
        Self::build_sharded(forest, pool, &ShardPlan::sequential(forest))
    }

    /// Shard-parallel [`Self::build`] (sorted per-shard runs merged into
    /// one bulk load; byte-identical to the sequential build).
    pub fn build_sharded(forest: &XmlForest, pool: Arc<BufferPool>, plan: &ShardPlan) -> Self {
        let runs = map_shards(plan, |range| {
            let mut entries = Vec::new();
            for_each_root_path_in(forest, range, |tags, ids, value| {
                if value.is_some() {
                    return; // structure only
                }
                let mut key = KeyBuf::new();
                let mut path = Vec::with_capacity(tags.len() + 1);
                designator::push_path(&mut path, tags);
                path.push(designator::TERMINATOR);
                key.push_raw(&path);
                key.push_u64(*ids.last().unwrap());
                entries.push((key.finish(), Vec::new()));
            });
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            entries
        });
        DataGuide {
            tree: bulk_build(pool, BTreeOptions::default(), merge_sorted_runs(runs)),
            lookups: AtomicU64::new(0),
        }
    }

    /// Ids of the final elements of every instance of the exact
    /// root-anchored path `tags` — one probe.
    pub fn path_instances(&self, tags: &[TagId]) -> Vec<u64> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut prefix = Vec::with_capacity(tags.len() + 1);
        designator::push_path(&mut prefix, tags);
        prefix.push(designator::TERMINATOR);
        self.tree
            .scan_prefix(&prefix)
            .map(|(k, _)| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&k[k.len() - 8..]);
                u64::from_be_bytes(b)
            })
            .collect()
    }

    /// Index probes issued since the last call.
    pub fn take_lookups(&self) -> u64 {
        self.lookups.swap(0, Ordering::Relaxed)
    }

    /// Entry count.
    pub fn rows(&self) -> u64 {
        self.tree.len()
    }

    /// Physical tree shape for the optimizer's catalog (see
    /// [`crate::auto`]).
    pub fn cost_profile(&self) -> xtwig_opt::TreeProfile {
        crate::auto::tree_profile(&self.tree)
    }
}

impl DataGuide {
    /// Writes the catalog metadata a reopen needs (see
    /// [`crate::persist`]).
    pub(crate) fn write_meta(&self, w: &mut crate::persist::ByteWriter) {
        crate::persist::write_tree_meta(w, &self.tree);
    }

    /// Reattaches a persisted DataGuide over `pool`.
    pub(crate) fn open_meta(
        r: &mut crate::persist::ByteReader<'_>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, crate::persist::FormatError> {
        Ok(DataGuide { tree: crate::persist::read_tree_meta(r, pool)?, lookups: AtomicU64::new(0) })
    }
}

impl PathIndex for DataGuide {
    fn name(&self) -> &'static str {
        "DataGuide"
    }

    fn family_position(&self) -> FamilyPosition {
        FamilyPosition {
            schema_paths: SchemaPathSubset::RootToLeafPrefixes,
            idlist: IdListSublist::LastOnly,
            indexed: vec![IndexedColumn::SchemaPath],
        }
    }

    fn space_bytes(&self) -> u64 {
        self.tree.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn tags(f: &XmlForest, names: &[&str]) -> Vec<TagId> {
        names.iter().map(|n| f.dict().lookup(n).unwrap()).collect()
    }

    #[test]
    fn exact_path_probe_returns_instances() {
        let f = fig1_book_document();
        let dg = DataGuide::build(&f, Arc::new(BufferPool::in_memory(4096)));
        let mut authors = dg.path_instances(&tags(&f, &["book", "allauthors", "author"]));
        authors.sort_unstable();
        assert_eq!(authors, vec![6, 21, 41]);
        assert_eq!(dg.take_lookups(), 1);
    }

    #[test]
    fn prefix_paths_are_stored() {
        let f = fig1_book_document();
        let dg = DataGuide::build(&f, Arc::new(BufferPool::in_memory(4096)));
        assert_eq!(dg.path_instances(&tags(&f, &["book"])), vec![1]);
        assert_eq!(dg.path_instances(&tags(&f, &["book", "allauthors"])), vec![5]);
    }

    #[test]
    fn no_value_entries_exist() {
        let f = fig1_book_document();
        let dg = DataGuide::build(&f, Arc::new(BufferPool::in_memory(4096)));
        // One entry per node: structure only.
        assert_eq!(dg.rows(), (f.node_count() - 1) as u64);
    }

    #[test]
    fn wrong_paths_are_empty() {
        let f = fig1_book_document();
        let dg = DataGuide::build(&f, Arc::new(BufferPool::in_memory(4096)));
        // "author" alone is not a root path; the DataGuide is anchored.
        assert!(dg.path_instances(&tags(&f, &["author"])).is_empty());
        // An existing path with one wrong step.
        assert!(dg.path_instances(&tags(&f, &["book", "author"])).is_empty());
    }

    #[test]
    fn family_position_is_fig3_row() {
        let f = fig1_book_document();
        let dg = DataGuide::build(&f, Arc::new(BufferPool::in_memory(4096)));
        let pos = dg.family_position();
        assert_eq!(pos.schema_paths, SchemaPathSubset::RootToLeafPrefixes);
        assert_eq!(pos.idlist, IdListSublist::LastOnly);
        assert_eq!(pos.indexed, vec![IndexedColumn::SchemaPath]);
    }
}
