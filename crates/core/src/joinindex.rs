//! Join Indices (paper §5.1.2, §5.2.6, Valduriez).
//!
//! A join index materializes the endpoint pairs of a path expression:
//! only the **starting and ending node id** of each instance are stored.
//! To support ad hoc queries we materialize, for every distinct
//! root-anchored schema path `p` and every split position `j`, the join
//! index of the path expression `p[j..]` *in the context of* `p` — i.e.,
//! pairs `(id at step j, leaf id)`.
//!
//! Two consequences the paper measures:
//!
//! * each materialized expression needs **two** B+-trees (forward on the
//!   start id, backward on the end id) so intermediate/branch nodes can
//!   be recovered from either side — which is why Join Indices are the
//!   largest configuration in Fig. 9;
//! * a `//` pattern matching *m* distinct schema paths opens *m*
//!   table pairs (Fig. 13's linear-in-paths cost), and recovering each
//!   interior position of a pattern costs one backward probe per
//!   candidate per position.

use crate::family::{
    FamilyPosition, IdListSublist, IndexedColumn, PathIndex, PathMatch, PcSubpathQuery,
    SchemaPathSubset,
};
use crate::parallel::{map_shards, ShardPlan};
use crate::paths::for_each_root_path_in;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtwig_btree::{bulk_build, merge_sorted_runs, BTree, BTreeOptions};
use xtwig_rel::codec::KeyBuf;
use xtwig_storage::BufferPool;
use xtwig_xml::{TagId, XmlForest};

struct JiPair {
    /// `(first id, last id) → ()`
    forward: BTree,
    /// `(last id, first id) → ()`
    backward: BTree,
}

/// The full set of join indices.
pub struct JoinIndices {
    /// Keyed by (full root path, split position).
    tables: HashMap<(Vec<TagId>, usize), JiPair>,
    lookups: AtomicU64,
}

fn pair_key(a: u64, b: u64) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_u64(a);
    k.push_u64(b);
    k.finish()
}

fn trailing_u64(k: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&k[k.len() - 8..]);
    u64::from_be_bytes(b)
}

impl JoinIndices {
    /// Materializes all join indices from `forest`.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>) -> Self {
        Self::build_sharded(forest, pool, &ShardPlan::sequential(forest))
    }

    /// Shard-parallel [`Self::build`]: per-shard grouping and sorting on
    /// the worker pool, then one merged bulk load per `(path, split)`
    /// table pair **in sorted expression order** — deterministic page
    /// layout, identical table contents (see
    /// [`AccessSupportRelations::build_sharded`](crate::asr::AccessSupportRelations::build_sharded)).
    pub fn build_sharded(forest: &XmlForest, pool: Arc<BufferPool>, plan: &ShardPlan) -> Self {
        type Entries = (Vec<(Vec<u8>, Vec<u8>)>, Vec<(Vec<u8>, Vec<u8>)>);
        let mut shard_groups: Vec<HashMap<(Vec<TagId>, usize), Entries>> =
            map_shards(plan, |range| {
                let mut grouped: HashMap<(Vec<TagId>, usize), Entries> = HashMap::new();
                for_each_root_path_in(forest, range, |tags, ids, value| {
                    if value.is_some() {
                        return; // endpoints only; values live in the base data
                    }
                    let last = *ids.last().unwrap();
                    for (j, &start) in ids.iter().enumerate() {
                        let e = grouped.entry((tags.to_vec(), j)).or_default();
                        e.0.push((pair_key(start, last), Vec::new()));
                        e.1.push((pair_key(last, start), Vec::new()));
                    }
                });
                for (fwd, bwd) in grouped.values_mut() {
                    fwd.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    bwd.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                }
                grouped
            });
        let mut exprs: Vec<(Vec<TagId>, usize)> =
            shard_groups.iter().flat_map(|g| g.keys().cloned()).collect();
        exprs.sort_unstable();
        exprs.dedup();
        let mut tables = HashMap::with_capacity(exprs.len());
        let opts = BTreeOptions::default();
        for expr in exprs {
            let mut fwd_runs = Vec::new();
            let mut bwd_runs = Vec::new();
            for g in &mut shard_groups {
                if let Some((fwd, bwd)) = g.remove(&expr) {
                    fwd_runs.push(fwd);
                    bwd_runs.push(bwd);
                }
            }
            tables.insert(
                expr,
                JiPair {
                    forward: bulk_build(pool.clone(), opts, merge_sorted_runs(fwd_runs)),
                    backward: bulk_build(pool.clone(), opts, merge_sorted_runs(bwd_runs)),
                },
            );
        }
        JoinIndices { tables, lookups: AtomicU64::new(0) }
    }

    /// Number of materialized path expressions (each holding two trees).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Index probes issued since the last call.
    pub fn take_lookups(&self) -> u64 {
        self.lookups.swap(0, Ordering::Relaxed)
    }

    /// Aggregate physical shape of the per-expression table pairs, for
    /// the optimizer's catalog (see [`crate::auto`]).
    pub fn cost_profile(&self) -> xtwig_opt::TableSetProfile {
        let mut p =
            xtwig_opt::TableSetProfile { tables: self.tables.len() as u64, ..Default::default() };
        for pair in self.tables.values() {
            for tree in [&pair.forward, &pair.backward] {
                let s = tree.stats();
                p.pages += s.pages;
                p.rows += s.entries;
                p.height = p.height.max(s.height.saturating_sub(1));
            }
        }
        p
    }

    /// Stored `(path, split)` expressions whose suffix equals the
    /// pattern (exact root path for anchored patterns).
    pub fn matching_expressions(&self, q: &PcSubpathQuery) -> Vec<(Vec<TagId>, usize)> {
        self.tables
            .keys()
            .filter(|(p, j)| {
                if q.anchored {
                    *j == 0 && p == &q.tags
                } else {
                    p.len() - j == q.tags.len() && p[*j..] == q.tags[..]
                }
            })
            .cloned()
            .collect()
    }

    /// Start ids paired with `last` in expression `(path, split)` — one
    /// backward probe.
    pub fn first_ids(&self, path: &[TagId], split: usize, last: u64) -> Vec<u64> {
        let Some(pair) = self.tables.get(&(path.to_vec(), split)) else { return Vec::new() };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut prefix = KeyBuf::new();
        prefix.push_u64(last);
        pair.backward.scan_prefix(prefix.as_bytes()).map(|(k, _)| trailing_u64(&k)).collect()
    }

    /// End ids paired with `first` in expression `(path, split)` — one
    /// forward probe.
    pub fn last_ids(&self, path: &[TagId], split: usize, first: u64) -> Vec<u64> {
        let Some(pair) = self.tables.get(&(path.to_vec(), split)) else { return Vec::new() };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut prefix = KeyBuf::new();
        prefix.push_u64(first);
        pair.forward.scan_prefix(prefix.as_bytes()).map(|(k, _)| trailing_u64(&k)).collect()
    }

    /// All endpoint pairs of an expression (structural scan).
    pub fn all_pairs(&self, path: &[TagId], split: usize) -> Vec<(u64, u64)> {
        let Some(pair) = self.tables.get(&(path.to_vec(), split)) else { return Vec::new() };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        pair.forward
            .scan_all()
            .map(|(k, _)| {
                // key = [u64 first][u64 last], each 9 bytes with tag.
                let mut f = [0u8; 8];
                f.copy_from_slice(&k[1..9]);
                (u64::from_be_bytes(f), trailing_u64(&k))
            })
            .collect()
    }

    /// Evaluates a PCsubpath given the candidate leaf ids (from the Edge
    /// value index — join indices store no values). Every interior
    /// position is recovered with one backward probe per candidate per
    /// matching expression.
    pub fn eval_pcsubpath_with_leaves(&self, q: &PcSubpathQuery, leaves: &[u64]) -> Vec<PathMatch> {
        let k = q.tags.len();
        let mut out = Vec::new();
        for (path, split) in self.matching_expressions(q) {
            for &leaf in leaves {
                // Position i of the pattern = split + i of the full path.
                let mut ids = vec![0u64; k];
                ids[k - 1] = leaf;
                let mut ok = true;
                for (i, slot) in ids.iter_mut().take(k - 1).enumerate() {
                    let firsts = self.first_ids(&path, split + i, leaf);
                    match firsts.as_slice() {
                        [one] => *slot = *one,
                        [] => {
                            ok = false;
                            break;
                        }
                        many => {
                            // A leaf has a unique root path; duplicates
                            // would indicate table corruption.
                            debug_assert!(false, "ambiguous first ids {many:?}");
                            *slot = many[0];
                        }
                    }
                }
                if ok {
                    out.push(PathMatch { head: 0, tags: q.tags.clone(), ids });
                }
            }
        }
        out.sort_by(|a, b| a.ids.cmp(&b.ids));
        out.dedup_by(|a, b| a.ids == b.ids);
        out
    }

    /// Structural (no-value) evaluation: scans each matching expression.
    pub fn eval_pcsubpath_structural(&self, q: &PcSubpathQuery) -> Vec<PathMatch> {
        let k = q.tags.len();
        let mut out = Vec::new();
        for (path, split) in self.matching_expressions(q) {
            for (first, last) in self.all_pairs(&path, split) {
                let mut ids = vec![0u64; k];
                ids[0] = first;
                ids[k - 1] = last;
                let mut ok = true;
                #[allow(clippy::needless_range_loop)] // split + i is also an index
                for i in 1..k.saturating_sub(1) {
                    let firsts = self.first_ids(&path, split + i, last);
                    if let [one] = firsts.as_slice() {
                        ids[i] = *one;
                    } else {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    out.push(PathMatch { head: 0, tags: q.tags.clone(), ids });
                }
            }
        }
        out.sort_by(|a, b| a.ids.cmp(&b.ids));
        out.dedup_by(|a, b| a.ids == b.ids);
        out
    }
}

impl JoinIndices {
    /// Writes the catalog metadata a reopen needs (see
    /// [`crate::persist`]): every `(path, split)` expression's key and
    /// both trees' shapes, in sorted expression order.
    pub(crate) fn write_meta(&self, w: &mut crate::persist::ByteWriter) {
        let mut exprs: Vec<&(Vec<TagId>, usize)> = self.tables.keys().collect();
        exprs.sort_unstable();
        w.push_u32(exprs.len() as u32);
        for expr in exprs {
            crate::persist::write_tag_path(w, &expr.0);
            w.push_u32(expr.1 as u32);
            let pair = &self.tables[expr];
            crate::persist::write_tree_meta(w, &pair.forward);
            crate::persist::write_tree_meta(w, &pair.backward);
        }
    }

    /// Reattaches persisted Join Indices over `pool`.
    pub(crate) fn open_meta(
        r: &mut crate::persist::ByteReader<'_>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, crate::persist::FormatError> {
        let n = r.u32()? as usize;
        let mut tables = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let path = crate::persist::read_tag_path(r)?;
            let split = r.u32()? as usize;
            if split >= path.len().max(1) {
                return crate::persist::format_err(format!(
                    "join-index split {split} outside its {}-step path",
                    path.len()
                ));
            }
            let forward = crate::persist::read_tree_meta(r, pool.clone())?;
            let backward = crate::persist::read_tree_meta(r, pool.clone())?;
            if tables.insert((path, split), JiPair { forward, backward }).is_some() {
                return crate::persist::format_err("duplicate join-index expression");
            }
        }
        Ok(JoinIndices { tables, lookups: AtomicU64::new(0) })
    }
}

impl PathIndex for JoinIndices {
    fn name(&self) -> &'static str {
        "JoinIndex"
    }

    /// Like ASRs, join indices encode schema as relation names; they keep
    /// only endpoint ids (first-or-last sublist).
    fn family_position(&self) -> FamilyPosition {
        FamilyPosition {
            schema_paths: SchemaPathSubset::AllSubpaths,
            idlist: IdListSublist::FirstOrLast,
            indexed: vec![IndexedColumn::HeadId],
        }
    }

    fn space_bytes(&self) -> u64 {
        self.tables.values().map(|p| p.forward.space_bytes() + p.backward.space_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn build(f: &XmlForest) -> JoinIndices {
        JoinIndices::build(f, Arc::new(BufferPool::in_memory(16384)))
    }

    fn q(f: &XmlForest, steps: &[&str], anchored: bool, value: Option<&str>) -> PcSubpathQuery {
        PcSubpathQuery::resolve(f.dict(), steps, anchored, value).unwrap()
    }

    #[test]
    fn two_trees_per_expression_and_more_tables_than_asr() {
        let f = fig1_book_document();
        let ji = build(&f);
        let asr =
            crate::asr::AccessSupportRelations::build(&f, Arc::new(BufferPool::in_memory(8192)));
        assert!(ji.table_count() > asr.table_count());
        // Fig. 9: JI needs more space than ASR.
        assert!(ji.space_bytes() > asr.space_bytes());
    }

    #[test]
    fn backward_probe_recovers_start_ids() {
        let f = fig1_book_document();
        let ji = build(&f);
        let path: Vec<TagId> = ["book", "allauthors", "author", "fn"]
            .iter()
            .map(|t| f.dict().lookup(t).unwrap())
            .collect();
        // From leaf fn=7 back to the author position (split 2).
        assert_eq!(ji.first_ids(&path, 2, 7), vec![6]);
        // Back to allauthors (split 1) and book (split 0).
        assert_eq!(ji.first_ids(&path, 1, 7), vec![5]);
        assert_eq!(ji.first_ids(&path, 0, 7), vec![1]);
        // Forward from author 6: both its leaves... fn only on this path.
        assert_eq!(ji.last_ids(&path, 2, 6), vec![7]);
    }

    #[test]
    fn valued_eval_uses_provided_leaves() {
        let f = fig1_book_document();
        let ji = build(&f);
        // Engine would get [7, 42] from the Edge value index for fn=jane.
        let ms = ji.eval_pcsubpath_with_leaves(&q(&f, &["author", "fn"], false, None), &[7, 42]);
        let mut lists: Vec<Vec<u64>> = ms.iter().map(|m| m.ids.clone()).collect();
        lists.sort();
        assert_eq!(lists, vec![vec![6, 7], vec![41, 42]]);
    }

    #[test]
    fn structural_eval_scans_expressions() {
        let f = fig1_book_document();
        let ji = build(&f);
        let ms = ji.eval_pcsubpath_structural(&q(&f, &["title"], false, None));
        let mut last: Vec<u64> = ms.iter().map(|m| m.last_id()).collect();
        last.sort_unstable();
        assert_eq!(last, vec![2, 48]);
        // Two distinct schema paths end in title -> 2 expressions scanned.
        assert_eq!(ji.take_lookups(), 2);
    }

    #[test]
    fn recursion_touches_linear_tables() {
        // //detail matches two schema paths (allauthors/contact/detail
        // appears under two contact positions? both contacts share the
        // same schema path) -> exactly 1 expression; //fn -> 1. The
        // multi-table effect needs distinct paths:
        let f = fig1_book_document();
        let ji = build(&f);
        let exprs = ji.matching_expressions(&q(&f, &["title"], false, None));
        assert_eq!(exprs.len(), 2); // book/title and book/chapter/title
        let anchored = ji.matching_expressions(&q(&f, &["book", "title"], true, None));
        assert_eq!(anchored.len(), 1);
    }

    #[test]
    fn missing_pattern_is_empty() {
        let f = fig1_book_document();
        let ji = build(&f);
        assert!(ji.eval_pcsubpath_structural(&q(&f, &["chapter", "fn"], false, None)).is_empty());
    }
}
