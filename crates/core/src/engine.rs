//! The twig query engine: builds the seven index configurations of §5.1.2
//! and evaluates query twigs against any of them.
//!
//! Each strategy gets its own buffer pool so the harness can attribute
//! logical/physical I/O per configuration (the paper uses one DB2 buffer
//! pool but reports per-configuration timings; separate pools give the
//! same attribution without cross-strategy cache pollution). Shared base
//! structures follow the paper's setup: the DG+Edge, IF+Edge, and Join
//! Index strategies use the Edge table's value/link indexes for the parts
//! their primary structure cannot answer.
//!
//! Execution follows §3: decompose the twig into PCsubpaths, evaluate
//! each with the strategy's probe pattern, and stitch the matches with
//! joins on ids extracted from IdLists (merge plan) or with BoundIndex
//! probes (index-nested-loop plan, DATAPATHS only).

use crate::asr::AccessSupportRelations;
use crate::dataguide::DataGuide;
use crate::datapaths::{DataPaths, DataPathsOptions};
use crate::decompose::{decompose, CompiledTwig, UnknownTag};
use crate::edge::EdgeTable;
use crate::fabric::IndexFabric;
use crate::family::{
    value_needs_recheck, BoundIndex, FreeIndex, PathIndex, PathMatch, PcSubpathQuery,
};
use crate::joinindex::JoinIndices;
use crate::parallel::ShardPlan;
use crate::paths::PathStats;
use crate::plan::{choose_plan, JoinHow, PlanKind, ProbeSpec, QueryPlan};
use crate::rootpaths::{RootPaths, RootPathsOptions};
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtwig_obs::{SpanCounters, Trace};
use xtwig_opt::{CalibrationLog, CalibrationSample};
use xtwig_storage::{BufferPool, IoStatsSnapshot, PoolCounters};
use xtwig_xml::{NodeId, TagId, TwigPattern, XmlForest};

// The strategy menu lives in `xtwig-opt` — the cost-based decision
// layer ranks `Strategy` values, and the engine re-exports the type so
// `xtwig_core::Strategy` paths keep working. `Strategy::Auto` is the
// optimizer-resolved pseudo-strategy; every execution path below
// resolves it to a concrete configuration before touching an index
// (see [`QueryEngine::resolve_strategy`] in `crate::auto`).
pub use xtwig_opt::{ParseStrategyError, Strategy};

/// Build options for [`QueryEngine`].
#[derive(Clone)]
pub struct EngineOptions {
    /// Which strategies to materialize. Listing [`Strategy::Auto`]
    /// requests **every** concrete configuration — auto is a
    /// query-time directive, and resolving it needs the full menu
    /// built (a bare `--strategies auto` must not silently persist an
    /// index with nothing in it).
    pub strategies: Vec<Strategy>,
    /// Buffer-pool frames per structure pool (default 2048 = 16 MiB; the
    /// harness uses 5120 = 40 MiB, matching §5.1.1).
    pub pool_pages: usize,
    /// ROOTPATHS options.
    pub rp: RootPathsOptions,
    /// DATAPATHS options.
    pub dp: DataPathsOptions,
    /// §4.3 HeadId pruning: retain only DATAPATHS rows headed at these
    /// tags (None = keep everything).
    pub head_filter_tags: Option<HashSet<String>>,
    /// Stitch `//` edges with the stack-based structural join
    /// ([`crate::stitch`]) instead of IdList-ancestor unnesting — the §6
    /// alternative the paper could not run inside DB2.
    pub structural_ad_joins: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            strategies: Strategy::ALL.to_vec(),
            pool_pages: 2048,
            rp: RootPathsOptions::default(),
            dp: DataPathsOptions::default(),
            head_filter_tags: None,
            structural_ad_joins: false,
        }
    }
}

/// Per-query metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryMetrics {
    /// Index probes issued (every B+-tree lookup counts as one).
    pub probes: u64,
    /// Match rows fetched from indexes.
    pub rows_fetched: u64,
    /// Buffer-pool page requests during the query.
    pub logical_reads: u64,
    /// Pages read from the backend (cold portion).
    pub physical_reads: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// A query result.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Distinct ids bound to the twig's output node.
    pub ids: BTreeSet<u64>,
    /// The plan kind that ran.
    pub plan: PlanKind,
    /// The concrete strategy that executed — the optimizer's pick when
    /// the query was submitted with [`Strategy::Auto`] (or the
    /// requested strategy verbatim when nothing executed at all, e.g.
    /// an unknown-tag twig).
    pub strategy: Strategy,
    /// Cost metrics.
    pub metrics: QueryMetrics,
}

impl QueryAnswer {
    /// The canonical answer for a twig that cannot match — e.g. it
    /// names a tag absent from the data (§2.2) — with nothing executed
    /// and all metrics zero.
    pub fn empty(strategy: Strategy) -> Self {
        QueryAnswer {
            ids: BTreeSet::new(),
            plan: PlanKind::Merge,
            strategy,
            metrics: QueryMetrics::default(),
        }
    }
}

/// Memo key: strategy, subpath pattern, interior-ids-needed flag.
type MemoKey = (Strategy, PcSubpathQuery, bool);
/// Memo value: shared matches plus the full-root-IdList flag.
type MemoEntry = (Arc<Vec<PathMatch>>, bool);

/// Memoized FreeIndex subpath lookups, shared across the queries of one
/// batch (see [`QueryEngine::answer_batch`]). Keyed by `(strategy,
/// pattern, interior-needed)` — different strategies return differently
/// shaped matches (full IdLists vs. leaf-only), so entries never cross
/// strategies.
#[derive(Default)]
pub struct ProbeMemo {
    map: HashMap<MemoKey, MemoEntry>,
    hits: u64,
    misses: u64,
}

impl ProbeMemo {
    /// An empty memo.
    pub fn new() -> Self {
        ProbeMemo::default()
    }

    /// Hit/miss counts so far.
    pub fn stats(&self) -> ProbeMemoStats {
        ProbeMemoStats { hits: self.hits, misses: self.misses }
    }
}

/// Hit/miss statistics of a [`ProbeMemo`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeMemoStats {
    /// Subpath lookups answered from the memo (index probes saved).
    pub hits: u64,
    /// Subpath lookups that went to the index.
    pub misses: u64,
}

/// The engine owning all built index configurations for one forest.
///
/// Generic over how the forest is held: `QueryEngine<&XmlForest>`
/// borrows it (the historical single-threaded shape), while
/// `QueryEngine<Arc<XmlForest>>` — the default — owns a shared handle
/// and is `Send + Sync`, so one engine can serve concurrent queries
/// from many threads (`answer` takes `&self` throughout; see
/// `xtwig-service`). The only `&mut self` surface is index maintenance
/// ([`QueryEngine::rootpaths_mut`] / [`QueryEngine::datapaths_mut`]);
/// rather than serializing maintenance against readers with a lock,
/// callers fork the engine ([`QueryEngine::fork`] — a copy-on-write
/// snapshot that copies no pages), mutate the fork, and publish it,
/// leaving the original to serve concurrent readers as a frozen
/// snapshot.
///
/// Concurrency note on metrics: result sets are always exact, but the
/// per-query `probes`/`logical_reads` attribution drains shared
/// counters, so it is only exact when queries against the *same*
/// strategy do not overlap in time.
pub struct QueryEngine<F: Borrow<XmlForest> = Arc<XmlForest>> {
    // Fields are crate-visible for `crate::persist`, which flushes each
    // structure's pool into an index file and reconstructs the engine
    // from the stored catalog on open.
    pub(crate) forest: F,
    pub(crate) stats: PathStats,
    pub(crate) rp: Option<(RootPaths, Arc<BufferPool>)>,
    pub(crate) dp: Option<(DataPaths, Arc<BufferPool>)>,
    pub(crate) pruned_tags: Option<HashSet<TagId>>,
    pub(crate) edge: Option<(EdgeTable, Arc<BufferPool>)>,
    pub(crate) dg: Option<(DataGuide, Arc<BufferPool>)>,
    pub(crate) fab: Option<(IndexFabric, Arc<BufferPool>)>,
    pub(crate) asr: Option<(AccessSupportRelations, Arc<BufferPool>)>,
    pub(crate) ji: Option<(JoinIndices, Arc<BufferPool>)>,
    pub(crate) structural_ad_joins: bool,
    // Optimizer-feedback ring fed by traced executions; forks share the
    // parent's log so samples accumulate across snapshots.
    pub(crate) calibration: Arc<CalibrationLog>,
}

/// A partial result row: per-twig-node bindings plus captured ancestor
/// lists for segment roots (used by `//` joins).
#[derive(Debug, Clone)]
struct Row {
    bind: Vec<u64>,
    anc: Vec<(usize, Arc<Vec<u64>>)>,
}

const UNBOUND: u64 = u64::MAX;

impl Row {
    fn new(n: usize) -> Self {
        Row { bind: vec![UNBOUND; n], anc: Vec::new() }
    }

    fn ancestors_of(&self, node: usize) -> Option<&Arc<Vec<u64>>> {
        self.anc.iter().find(|(n, _)| *n == node).map(|(_, a)| a)
    }
}

impl<F: Borrow<XmlForest>> QueryEngine<F> {
    /// Builds the selected index configurations over `forest`.
    pub fn build(forest: F, options: EngineOptions) -> Self {
        let plan = ShardPlan::sequential(forest.borrow());
        Self::build_with_plan(forest, options, &plan)
    }

    /// Builds the selected configurations with a shard-parallel pass:
    /// the forest is partitioned into up to `shards` whole-document
    /// ranges and each structure's rows are enumerated and sorted on a
    /// worker pool, then merged into one deterministic bulk load per
    /// B+-tree. The resulting structures are **byte-identical** to
    /// [`QueryEngine::build`]'s — same page images, same answers — as
    /// asserted via [`QueryEngine::structure_digest`] in the
    /// `parallel_build` suite. `shards <= 1` degenerates to the
    /// sequential build.
    pub fn build_parallel(forest: F, options: EngineOptions, shards: usize) -> Self {
        let plan = ShardPlan::new(forest.borrow(), shards);
        Self::build_with_plan(forest, options, &plan)
    }

    /// [`QueryEngine::build_parallel`] with an explicit [`ShardPlan`]
    /// (tests pin shard boundaries and worker counts through this).
    pub fn build_with_plan(forest: F, options: EngineOptions, plan: &ShardPlan) -> Self {
        let f: &XmlForest = forest.borrow();
        let want = |s: Strategy| {
            options.strategies.contains(&s) || options.strategies.contains(&Strategy::Auto)
        };
        let needs_edge = want(Strategy::Edge)
            || want(Strategy::DataGuideEdge)
            || want(Strategy::IndexFabricEdge)
            || want(Strategy::JoinIndex);
        let pool = || Arc::new(BufferPool::in_memory(options.pool_pages));
        let stats = PathStats::build_sharded(f, plan);
        let pruned_tags = options
            .head_filter_tags
            .as_ref()
            .map(|names| names.iter().filter_map(|n| f.dict().lookup(n)).collect::<HashSet<_>>());
        let dp = want(Strategy::DataPaths).then(|| {
            let p = pool();
            let dp = match &pruned_tags {
                None => DataPaths::build_sharded(f, p.clone(), options.dp, plan),
                Some(tags) => DataPaths::build_filtered_sharded(
                    f,
                    p.clone(),
                    options.dp,
                    Some(&|_head, path_tags: &[TagId]| tags.contains(&path_tags[0])),
                    plan,
                ),
            };
            (dp, p)
        });
        let rp = want(Strategy::RootPaths).then(|| {
            let p = pool();
            (RootPaths::build_sharded(f, p.clone(), options.rp, plan), p)
        });
        let edge = needs_edge.then(|| {
            let p = pool();
            (EdgeTable::build_sharded(f, p.clone(), plan), p)
        });
        let dg = want(Strategy::DataGuideEdge).then(|| {
            let p = pool();
            (DataGuide::build_sharded(f, p.clone(), plan), p)
        });
        let fab = want(Strategy::IndexFabricEdge).then(|| {
            let p = pool();
            (IndexFabric::build_sharded(f, p.clone(), plan), p)
        });
        let asr = want(Strategy::Asr).then(|| {
            let p = pool();
            (AccessSupportRelations::build_sharded(f, p.clone(), plan), p)
        });
        let ji = want(Strategy::JoinIndex).then(|| {
            let p = pool();
            (JoinIndices::build_sharded(f, p.clone(), plan), p)
        });
        QueryEngine {
            forest,
            stats,
            rp,
            dp,
            pruned_tags,
            edge,
            dg,
            fab,
            asr,
            ji,
            structural_ad_joins: options.structural_ad_joins,
            calibration: Arc::new(CalibrationLog::new(CalibrationLog::DEFAULT_CAPACITY)),
        }
    }

    /// The forest under query.
    pub fn forest(&self) -> &XmlForest {
        self.forest.borrow()
    }

    /// A clone of the forest handle — e.g. the `Arc<XmlForest>` a
    /// background rebuild shares without copying the data (see
    /// `TwigService::rebuild_parallel`).
    pub fn forest_handle(&self) -> F
    where
        F: Clone,
    {
        self.forest.clone()
    }

    /// True when `strategy`'s structures were built (querying an
    /// unbuilt strategy panics; services check this up front).
    /// [`Strategy::Auto`] is available as soon as any concrete strategy
    /// is — the optimizer only ranks built configurations.
    pub fn has_strategy(&self, strategy: Strategy) -> bool {
        match strategy {
            Strategy::RootPaths => self.rp.is_some(),
            Strategy::DataPaths => self.dp.is_some(),
            Strategy::Edge => self.edge.is_some(),
            Strategy::DataGuideEdge => self.dg.is_some() && self.edge.is_some(),
            Strategy::IndexFabricEdge => self.fab.is_some() && self.edge.is_some(),
            Strategy::Asr => self.asr.is_some(),
            Strategy::JoinIndex => self.ji.is_some() && self.edge.is_some(),
            Strategy::Auto => Strategy::ALL.iter().any(|&s| self.has_strategy(s)),
        }
    }

    /// Mutable access to ROOTPATHS for the §7 maintenance path. Callers
    /// holding the engine behind a lock (see `xtwig-service`) must
    /// invalidate any cached results after mutating.
    pub fn rootpaths_mut(&mut self) -> Option<&mut RootPaths> {
        self.rp.as_mut().map(|(i, _)| i)
    }

    /// Mutable access to DATAPATHS; see [`QueryEngine::rootpaths_mut`].
    pub fn datapaths_mut(&mut self) -> Option<&mut DataPaths> {
        self.dp.as_mut().map(|(i, _)| i)
    }

    /// Path statistics (selectivity estimates).
    pub fn stats(&self) -> &PathStats {
        &self.stats
    }

    /// The built ROOTPATHS index, if any.
    pub fn rootpaths(&self) -> Option<&RootPaths> {
        self.rp.as_ref().map(|(i, _)| i)
    }

    /// The built DATAPATHS index, if any.
    pub fn datapaths(&self) -> Option<&DataPaths> {
        self.dp.as_ref().map(|(i, _)| i)
    }

    /// The built Edge configuration, if any.
    pub fn edge(&self) -> Option<&EdgeTable> {
        self.edge.as_ref().map(|(i, _)| i)
    }

    /// Space used by a strategy (Fig. 9): the primary structure plus any
    /// Edge structures it relies on. [`Strategy::Auto`] owns no
    /// structures of its own and reports zero.
    pub fn space_bytes(&self, strategy: Strategy) -> u64 {
        let edge = self.edge.as_ref().map_or(0, |(e, _)| e.space_bytes());
        match strategy {
            Strategy::RootPaths => self.rp.as_ref().map_or(0, |(i, _)| i.space_bytes()),
            Strategy::DataPaths => self.dp.as_ref().map_or(0, |(i, _)| i.space_bytes()),
            Strategy::Edge => edge,
            Strategy::DataGuideEdge => self.dg.as_ref().map_or(0, |(i, _)| i.space_bytes()) + edge,
            Strategy::IndexFabricEdge => {
                self.fab.as_ref().map_or(0, |(i, _)| i.space_bytes()) + edge
            }
            Strategy::Asr => self.asr.as_ref().map_or(0, |(i, _)| i.space_bytes()),
            Strategy::JoinIndex => self.ji.as_ref().map_or(0, |(i, _)| i.space_bytes()) + edge,
            Strategy::Auto => 0,
        }
    }

    pub(crate) fn pools_for(&self, strategy: Strategy) -> Vec<&Arc<BufferPool>> {
        let mut pools = Vec::new();
        match strategy {
            Strategy::RootPaths => {
                if let Some((_, p)) = &self.rp {
                    pools.push(p);
                }
            }
            Strategy::DataPaths => {
                if let Some((_, p)) = &self.dp {
                    pools.push(p);
                }
            }
            Strategy::Edge => {
                if let Some((_, p)) = &self.edge {
                    pools.push(p);
                }
            }
            Strategy::DataGuideEdge => {
                if let Some((_, p)) = &self.dg {
                    pools.push(p);
                }
                if let Some((_, p)) = &self.edge {
                    pools.push(p);
                }
            }
            Strategy::IndexFabricEdge => {
                if let Some((_, p)) = &self.fab {
                    pools.push(p);
                }
                if let Some((_, p)) = &self.edge {
                    pools.push(p);
                }
            }
            Strategy::Asr => {
                if let Some((_, p)) = &self.asr {
                    pools.push(p);
                }
            }
            Strategy::JoinIndex => {
                if let Some((_, p)) = &self.ji {
                    pools.push(p);
                }
                if let Some((_, p)) = &self.edge {
                    pools.push(p);
                }
            }
            // Auto owns no pools; metric attribution happens against
            // the concrete strategy it resolved to.
            Strategy::Auto => {}
        }
        pools
    }

    /// FNV-1a digest over the raw page images of every buffer pool
    /// backing `strategy` (the primary structure's pool, plus the Edge
    /// pool for the strategies that lean on it). Two engines built from
    /// the same forest and options digest equal iff their index pages
    /// are byte-identical — the acceptance check for
    /// [`QueryEngine::build_parallel`].
    pub fn structure_digest(&self, strategy: Strategy) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for p in self.pools_for(strategy) {
            h ^= p.content_hash();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drops every cached page of the strategy's pools (flushes dirty
    /// pages first) so the next query runs cold — the paper's omitted
    /// cold-cache setting, used by the buffer-pool ablation bench.
    pub fn clear_caches(&self, strategy: Strategy) {
        for p in self.pools_for(strategy) {
            p.clear_cache();
        }
    }

    /// The engine's optimizer-feedback ring: one [`CalibrationSample`]
    /// per traced execution (see [`QueryEngine::answer_traced`]).
    /// Forks share the parent's log so samples accumulate across
    /// snapshots; indexes reopened from disk start with a fresh one.
    pub fn calibration_log(&self) -> &CalibrationLog {
        &self.calibration
    }

    /// Cheap shared counter handles, one per built structure's buffer
    /// pool: cumulative page reads, misses, and pins since build. The
    /// handles clone an `Arc` around the pool's atomics, so a metrics
    /// scraper can poll them without touching the query surface.
    pub fn pool_counters(&self) -> Vec<(&'static str, PoolCounters)> {
        let mut out = Vec::new();
        if let Some((_, p)) = &self.rp {
            out.push(("rootpaths", p.counters()));
        }
        if let Some((_, p)) = &self.dp {
            out.push(("datapaths", p.counters()));
        }
        if let Some((_, p)) = &self.edge {
            out.push(("edge", p.counters()));
        }
        if let Some((_, p)) = &self.dg {
            out.push(("dataguide", p.counters()));
        }
        if let Some((_, p)) = &self.fab {
            out.push(("fabric", p.counters()));
        }
        if let Some((_, p)) = &self.asr {
            out.push(("asr", p.counters()));
        }
        if let Some((_, p)) = &self.ji {
            out.push(("joinindex", p.counters()));
        }
        out
    }

    fn snapshot(&self, strategy: Strategy) -> IoStatsSnapshot {
        let mut total = IoStatsSnapshot::default();
        for p in self.pools_for(strategy) {
            let s = p.stats().snapshot();
            total.logical_reads += s.logical_reads;
            total.physical_reads += s.physical_reads;
            total.physical_writes += s.physical_writes;
        }
        total
    }

    fn drain_baseline_counters(&self, strategy: Strategy) -> u64 {
        let mut probes = 0;
        match strategy {
            Strategy::Edge => {
                if let Some((e, _)) = &self.edge {
                    probes += e.take_lookups();
                }
            }
            Strategy::DataGuideEdge => {
                if let Some((d, _)) = &self.dg {
                    probes += d.take_lookups();
                }
                if let Some((e, _)) = &self.edge {
                    probes += e.take_lookups();
                }
            }
            Strategy::IndexFabricEdge => {
                if let Some((f, _)) = &self.fab {
                    probes += f.take_lookups();
                }
                if let Some((e, _)) = &self.edge {
                    probes += e.take_lookups();
                }
            }
            Strategy::Asr => {
                if let Some((a, _)) = &self.asr {
                    probes += a.take_lookups();
                }
            }
            Strategy::JoinIndex => {
                if let Some((j, _)) = &self.ji {
                    probes += j.take_lookups();
                }
                if let Some((e, _)) = &self.edge {
                    probes += e.take_lookups();
                }
            }
            _ => {}
        }
        probes
    }

    /// Compiles and plans a twig in one step: the decompose/choose_plan
    /// front half of [`QueryEngine::answer`], exposed so plan caches
    /// (see `xtwig-service`) can skip it on repeated twig shapes.
    pub fn compile(&self, twig: &TwigPattern) -> Result<(CompiledTwig, QueryPlan), UnknownTag> {
        let compiled = decompose(twig, self.forest().dict())?;
        let plan = choose_plan(&compiled, &self.stats, self.forest().dict());
        Ok((compiled, plan))
    }

    /// Compiles and plans a twig (exposed for the harness' plan reports).
    pub fn plan(&self, twig: &TwigPattern) -> Option<QueryPlan> {
        self.compile(twig).ok().map(|(_, p)| p)
    }

    /// Answers `twig` with `strategy`. [`Strategy::Auto`] is resolved
    /// to the cheapest built configuration by the cost model first (see
    /// [`QueryEngine::resolve_strategy`]); the answer's `strategy`
    /// field reports what actually ran.
    ///
    /// # Panics
    /// Panics if the strategy's structures were not built.
    pub fn answer(&self, twig: &TwigPattern, strategy: Strategy) -> QueryAnswer {
        match self.compile(twig) {
            // Unknown tag: the result is necessarily empty (§2.2).
            Err(_) => QueryAnswer::empty(strategy),
            Ok((compiled, plan)) => self.answer_compiled(&compiled, &plan, strategy),
        }
    }

    /// Answers an already-compiled twig — the execution back half of
    /// [`QueryEngine::answer`], taking the plan from a cache.
    pub fn answer_compiled(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
        strategy: Strategy,
    ) -> QueryAnswer {
        self.answer_compiled_with(compiled, plan, strategy, None)
    }

    /// [`QueryEngine::answer_compiled`] with an optional cross-query
    /// [`ProbeMemo`]: structurally identical FreeIndex subpath lookups
    /// within one batch are issued once and their matches reused.
    pub fn answer_compiled_with(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
        strategy: Strategy,
        memo: Option<&mut ProbeMemo>,
    ) -> QueryAnswer {
        // Auto resolves to a concrete strategy before any index (or
        // metric counter) is touched.
        let strategy = self.resolve_strategy(strategy, compiled, plan);
        let before = self.snapshot(strategy);
        self.drain_baseline_counters(strategy);
        let start = Instant::now();
        let mut probes = 0u64;
        let mut rows_fetched = 0u64;
        let ids = self.execute(compiled, plan, strategy, &mut probes, &mut rows_fetched, memo);
        let elapsed = start.elapsed();
        probes += self.drain_baseline_counters(strategy);
        let after = self.snapshot(strategy);
        let delta = after.since(&before);
        QueryAnswer {
            ids,
            plan: plan.kind,
            strategy,
            metrics: QueryMetrics {
                probes,
                rows_fetched,
                logical_reads: delta.logical_reads,
                physical_reads: delta.physical_reads,
                elapsed,
            },
        }
    }

    /// [`QueryEngine::answer`] with pipeline tracing: returns the
    /// answer plus a [`Trace`] — a span tree covering planning,
    /// auto-resolution, every plan step (index probe, structural join,
    /// or INLJ extension), and output materialization, each with wall
    /// time, buffer-pool logical/physical read deltas, probe counts,
    /// and rows.
    ///
    /// The result and counter totals are identical to
    /// [`QueryEngine::answer`] (pinned by the `observability` suite);
    /// the untraced path shares none of the instrumentation — it
    /// executes the exact pre-tracing code — so tracing *off* costs
    /// nothing. Tracing *on* additionally ranks the strategy menu to
    /// capture the cost model's estimate and records one
    /// [`CalibrationSample`] into [`QueryEngine::calibration_log`].
    ///
    /// # Panics
    /// Panics if the strategy's structures were not built.
    pub fn answer_traced(&self, twig: &TwigPattern, strategy: Strategy) -> (QueryAnswer, Trace) {
        let mut trace = Trace::new();
        let q = trace.begin("query", strategy.label());
        let p = trace.begin("plan", "");
        match self.compile(twig) {
            Err(_) => {
                trace.annotate(p, "unknown tag: empty result");
                trace.end(p, SpanCounters::default());
                trace.end(q, SpanCounters::default());
                (QueryAnswer::empty(strategy), trace)
            }
            Ok((compiled, plan)) => {
                trace.annotate(p, format!("{:?}, {} steps", plan.kind, plan.steps.len()));
                trace.end(
                    p,
                    SpanCounters { rows: plan.steps.len() as u64, ..SpanCounters::default() },
                );
                let answer =
                    self.answer_compiled_traced(&compiled, &plan, strategy, None, &mut trace);
                let m = &answer.metrics;
                trace.end(
                    q,
                    SpanCounters {
                        logical_reads: m.logical_reads,
                        physical_reads: m.physical_reads,
                        probes: m.probes,
                        rows: answer.ids.len() as u64,
                    },
                );
                (answer, trace)
            }
        }
    }

    /// The execution back half of [`QueryEngine::answer_traced`],
    /// taking an already-compiled twig (the service's slow-query log
    /// re-executes cached plans through this). Appends `resolve`,
    /// `execute`, `step`, and `materialize` spans to `trace`; results
    /// and counter totals match [`QueryEngine::answer_compiled_with`].
    pub fn answer_compiled_traced(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
        strategy: Strategy,
        memo: Option<&mut ProbeMemo>,
        trace: &mut Trace,
    ) -> QueryAnswer {
        let requested = strategy;
        let r = trace.begin("resolve", "");
        let strategy = self.resolve_strategy(strategy, compiled, plan);
        let est_reads = self
            .rank_strategies(compiled, plan)
            .into_iter()
            .find(|c| c.strategy == strategy)
            .map(|c| c.est_page_reads);
        if requested == Strategy::Auto {
            trace.annotate(r, format!("auto\u{2192}{}", strategy.label()));
        } else {
            trace.annotate(r, strategy.label());
        }
        trace.end(r, SpanCounters::default());

        let e = trace.begin("execute", strategy.label());
        let before = self.snapshot(strategy);
        self.drain_baseline_counters(strategy);
        let start = Instant::now();
        let mut probes = 0u64;
        let mut rows_fetched = 0u64;
        let ids = self.execute_traced(
            compiled,
            plan,
            strategy,
            &mut probes,
            &mut rows_fetched,
            memo,
            trace,
        );
        let elapsed = start.elapsed();
        probes += self.drain_baseline_counters(strategy);
        let after = self.snapshot(strategy);
        let delta = after.since(&before);
        trace.end(
            e,
            SpanCounters {
                logical_reads: delta.logical_reads,
                physical_reads: delta.physical_reads,
                probes,
                rows: rows_fetched,
            },
        );
        self.calibration.record(CalibrationSample {
            shape: twig_shape(&compiled.twig),
            strategy,
            est_reads: est_reads.unwrap_or(0.0),
            actual_reads: delta.physical_reads,
            micros: elapsed.as_micros() as u64,
        });
        QueryAnswer {
            ids,
            plan: plan.kind,
            strategy,
            metrics: QueryMetrics {
                probes,
                rows_fetched,
                logical_reads: delta.logical_reads,
                physical_reads: delta.physical_reads,
                elapsed,
            },
        }
    }

    /// Answers a batch of twigs against one strategy, deduplicating
    /// FreeIndex probes across the batch: queries sharing a PCsubpath
    /// (same tags/anchoring/value) hit the index once. Returns the
    /// per-query answers plus the memo's hit/miss statistics.
    pub fn answer_batch(
        &self,
        twigs: &[TwigPattern],
        strategy: Strategy,
    ) -> (Vec<QueryAnswer>, ProbeMemoStats) {
        let mut memo = ProbeMemo::new();
        let answers = twigs
            .iter()
            .map(|t| match self.compile(t) {
                Err(_) => QueryAnswer::empty(strategy),
                Ok((compiled, plan)) => {
                    self.answer_compiled_with(&compiled, &plan, strategy, Some(&mut memo))
                }
            })
            .collect();
        (answers, memo.stats())
    }

    /// Twig nodes whose ids the execution actually consumes: the output
    /// node, nodes shared between subpaths (join keys), probe anchors,
    /// and the endpoints of `//` edges. Interior ids outside this set
    /// need not be materialized — which is what lets the Index Fabric
    /// answer a fully-specified single-path query in one probe (§5.2.1)
    /// while still paying the per-step walks on branching queries.
    pub(crate) fn needed_nodes(&self, compiled: &CompiledTwig, plan: &QueryPlan) -> HashSet<usize> {
        let mut needed: HashSet<usize> = HashSet::new();
        needed.insert(compiled.twig.output);
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for sp in &compiled.subpaths {
            for &node in &sp.nodes {
                *seen.entry(node).or_insert(0) += 1;
            }
        }
        needed.extend(seen.iter().filter(|(_, &c)| c > 1).map(|(&n, _)| n));
        for seg in &compiled.segments {
            if let Some((upper, _)) = seg.parent {
                needed.insert(upper);
                needed.insert(seg.root);
            }
        }
        for step in &plan.steps {
            if let Some(probe) = &step.probe {
                needed.insert(probe.anchor);
            }
        }
        needed
    }

    fn execute(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
        strategy: Strategy,
        probes: &mut u64,
        rows_fetched: &mut u64,
        mut memo: Option<&mut ProbeMemo>,
    ) -> BTreeSet<u64> {
        let n = compiled.twig.len();
        let use_inlj = plan.kind == PlanKind::IndexNestedLoop
            && strategy == Strategy::DataPaths
            && self.dp.is_some();
        let needed = self.needed_nodes(compiled, plan);
        let interior_needed = |sp: &crate::decompose::SubpathSpec| {
            sp.nodes[..sp.nodes.len() - 1].iter().any(|n| needed.contains(n))
        };
        let mut rows: Vec<Row> = Vec::new();
        for (i, step) in plan.steps.iter().enumerate() {
            let sp = &compiled.subpaths[step.subpath];
            if i == 0 {
                let (matches, full) = self.eval_free_memo(
                    strategy,
                    &sp.q,
                    interior_needed(sp),
                    probes,
                    memo.as_deref_mut(),
                );
                *rows_fetched += matches.len() as u64;
                rows = self.rows_from_matches(n, sp.nodes.as_slice(), &sp.q, &matches, full);
            } else {
                if rows.is_empty() {
                    return BTreeSet::new();
                }
                // A branch is a pure existence filter when none of the
                // bindings it would add are consumed later: run it as a
                // semi-join (the relational plan for an EXISTS predicate).
                let (keep, _) = self.keep_after(compiled, plan, i);
                let join = step.join.as_ref().expect("non-first steps carry joins");
                let already: HashSet<usize> = match join {
                    JoinHow::SharedNode { shared, .. } => shared.iter().copied().collect(),
                    JoinHow::AncestorOf { .. } | JoinHow::DescendantBound { .. } => HashSet::new(),
                };
                let semi =
                    sp.nodes.iter().all(|node| already.contains(node) || !keep.contains(node));
                let probe_ok = use_inlj
                    && step.probe.as_ref().is_some_and(|p| self.probe_head_allowed(compiled, p));
                if probe_ok {
                    let probe = step.probe.as_ref().unwrap();
                    rows = self.inlj_extend(compiled, rows, probe, semi, probes, rows_fetched);
                } else {
                    let (matches, full) = self.eval_free_memo(
                        strategy,
                        &sp.q,
                        interior_needed(sp),
                        probes,
                        memo.as_deref_mut(),
                    );
                    *rows_fetched += matches.len() as u64;
                    let new_rows =
                        self.rows_from_matches(n, sp.nodes.as_slice(), &sp.q, &matches, full);
                    rows = self.join(rows, new_rows, join, semi, probes);
                }
            }
            // Early projection + duplicate elimination: existence
            // predicates must not enumerate full match tuples (a
            // relational engine would run these joins as semi-joins).
            // Keep only bindings that later steps or the output consume.
            self.project_rows(compiled, plan, i, &mut rows);
        }
        let out = compiled.twig.output;
        rows.into_iter().map(|r| r.bind[out]).filter(|&id| id != UNBOUND).collect()
    }

    /// Instrumented copy of [`QueryEngine::execute`]: the identical
    /// algorithm, plus a `step` span per plan step (with per-step
    /// buffer-pool and probe deltas) and a `materialize` span around
    /// the final output projection.
    ///
    /// Kept as a separate body — rather than branching on a tracing
    /// flag inside `execute` — so the untraced hot path carries zero
    /// instrumentation cost; the `observability` suite pins result
    /// identity between the two across every strategy.
    #[allow(clippy::too_many_arguments)]
    fn execute_traced(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
        strategy: Strategy,
        probes: &mut u64,
        rows_fetched: &mut u64,
        mut memo: Option<&mut ProbeMemo>,
        trace: &mut Trace,
    ) -> BTreeSet<u64> {
        let n = compiled.twig.len();
        let use_inlj = plan.kind == PlanKind::IndexNestedLoop
            && strategy == Strategy::DataPaths
            && self.dp.is_some();
        let needed = self.needed_nodes(compiled, plan);
        let interior_needed = |sp: &crate::decompose::SubpathSpec| {
            sp.nodes[..sp.nodes.len() - 1].iter().any(|n| needed.contains(n))
        };
        let mut rows: Vec<Row> = Vec::new();
        for (i, step) in plan.steps.iter().enumerate() {
            let sp = &compiled.subpaths[step.subpath];
            let io_before = self.snapshot(strategy);
            let probes_before = *probes;
            let fetched_before = *rows_fetched;
            let t = trace.begin("step", String::new());
            let how;
            if i == 0 {
                let (matches, full) = self.eval_free_memo(
                    strategy,
                    &sp.q,
                    interior_needed(sp),
                    probes,
                    memo.as_deref_mut(),
                );
                *rows_fetched += matches.len() as u64;
                rows = self.rows_from_matches(n, sp.nodes.as_slice(), &sp.q, &matches, full);
                how = "probe";
            } else {
                if rows.is_empty() {
                    trace.annotate(t, format!("#{i} skipped: empty input"));
                    trace.end(t, SpanCounters::default());
                    return BTreeSet::new();
                }
                let (keep, _) = self.keep_after(compiled, plan, i);
                let join = step.join.as_ref().expect("non-first steps carry joins");
                let already: HashSet<usize> = match join {
                    JoinHow::SharedNode { shared, .. } => shared.iter().copied().collect(),
                    JoinHow::AncestorOf { .. } | JoinHow::DescendantBound { .. } => HashSet::new(),
                };
                let semi =
                    sp.nodes.iter().all(|node| already.contains(node) || !keep.contains(node));
                let probe_ok = use_inlj
                    && step.probe.as_ref().is_some_and(|p| self.probe_head_allowed(compiled, p));
                if probe_ok {
                    let probe = step.probe.as_ref().unwrap();
                    rows = self.inlj_extend(compiled, rows, probe, semi, probes, rows_fetched);
                    how = if semi { "inlj semi-join" } else { "inlj" };
                } else {
                    let (matches, full) = self.eval_free_memo(
                        strategy,
                        &sp.q,
                        interior_needed(sp),
                        probes,
                        memo.as_deref_mut(),
                    );
                    *rows_fetched += matches.len() as u64;
                    let new_rows =
                        self.rows_from_matches(n, sp.nodes.as_slice(), &sp.q, &matches, full);
                    rows = self.join(rows, new_rows, join, semi, probes);
                    how = if semi { "semi-join" } else { "join" };
                }
            }
            self.project_rows(compiled, plan, i, &mut rows);
            // Attribute the Edge family's deferred lookup counters to
            // the step that issued them; the wrapper's final drain then
            // collects nothing, so the query total matches the
            // untraced path exactly.
            *probes += self.drain_baseline_counters(strategy);
            let io = self.snapshot(strategy).since(&io_before);
            trace.annotate(t, format!("#{i} subpath {} {how}", step.subpath));
            trace.end(
                t,
                SpanCounters {
                    logical_reads: io.logical_reads,
                    physical_reads: io.physical_reads,
                    probes: *probes - probes_before,
                    rows: *rows_fetched - fetched_before,
                },
            );
        }
        let m = trace.begin("materialize", format!("output node {}", compiled.twig.output));
        let out = compiled.twig.output;
        let ids: BTreeSet<u64> =
            rows.into_iter().map(|r| r.bind[out]).filter(|&id| id != UNBOUND).collect();
        trace.end(m, SpanCounters { rows: ids.len() as u64, ..SpanCounters::default() });
        ids
    }

    /// Twig nodes consumed by steps after `done`, plus the output node;
    /// the second set lists segment roots whose ancestor lists later
    /// `//` joins need.
    fn keep_after(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
        done: usize,
    ) -> (HashSet<usize>, HashSet<usize>) {
        let mut keep: HashSet<usize> = HashSet::new();
        keep.insert(compiled.twig.output);
        let mut keep_anc: HashSet<usize> = HashSet::new();
        for step in &plan.steps[done + 1..] {
            let sp = &compiled.subpaths[step.subpath];
            keep.extend(sp.nodes.iter().copied());
            if let Some(probe) = &step.probe {
                keep.insert(probe.anchor);
            }
            match &step.join {
                Some(JoinHow::SharedNode { shared, deepest }) => {
                    keep.insert(*deepest);
                    keep.extend(shared.iter().copied());
                }
                Some(JoinHow::AncestorOf { upper, seg_root }) => {
                    keep.insert(*upper);
                    keep.insert(*seg_root);
                }
                Some(JoinHow::DescendantBound { upper, seg_root }) => {
                    keep.insert(*upper);
                    keep.insert(*seg_root);
                    keep_anc.insert(*seg_root);
                }
                None => {}
            }
        }
        (keep, keep_anc)
    }

    /// Projects away twig-node bindings no later step consumes, then
    /// deduplicates rows. `done` is the index of the just-executed step.
    fn project_rows(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
        done: usize,
        rows: &mut Vec<Row>,
    ) {
        let (keep, keep_anc) = self.keep_after(compiled, plan, done);
        for row in rows.iter_mut() {
            for (node, bind) in row.bind.iter_mut().enumerate() {
                if !keep.contains(&node) {
                    *bind = UNBOUND;
                }
            }
            row.anc.retain(|(node, _)| keep_anc.contains(node));
        }
        // Dedup by bindings; ancestor lists are functionally determined
        // by the segment-root binding, so keeping the first is safe.
        let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(rows.len());
        rows.retain(|r| seen.insert(r.bind.clone()));
    }

    /// §4.3: a pruned DATAPATHS index only supports probes on retained
    /// head tags.
    fn probe_head_allowed(&self, compiled: &CompiledTwig, probe: &ProbeSpec) -> bool {
        match &self.pruned_tags {
            None => true,
            Some(tags) => self
                .forest()
                .dict()
                .lookup(&compiled.twig.nodes[probe.anchor].tag)
                .is_some_and(|t| tags.contains(&t)),
        }
    }

    /// [`QueryEngine::eval_free`] behind the batch memo: a hit returns
    /// the shared match vector without touching any index (and without
    /// charging probes — that is the point of deduplication).
    fn eval_free_memo(
        &self,
        strategy: Strategy,
        q: &PcSubpathQuery,
        interior: bool,
        probes: &mut u64,
        memo: Option<&mut ProbeMemo>,
    ) -> (Arc<Vec<PathMatch>>, bool) {
        let Some(memo) = memo else {
            let (matches, full) = self.eval_free(strategy, q, interior, probes);
            return (Arc::new(matches), full);
        };
        let key = (strategy, q.clone(), interior);
        if let Some((matches, full)) = memo.map.get(&key) {
            memo.hits += 1;
            return (matches.clone(), *full);
        }
        let (matches, full) = self.eval_free(strategy, q, interior, probes);
        let matches = Arc::new(matches);
        memo.misses += 1;
        memo.map.insert(key, (matches.clone(), full));
        (matches, full)
    }

    /// Evaluates one PCsubpath with the strategy's probe pattern.
    /// Returns the matches and whether they carry full root IdLists.
    fn eval_free(
        &self,
        strategy: Strategy,
        q: &PcSubpathQuery,
        interior: bool,
        probes: &mut u64,
    ) -> (Vec<PathMatch>, bool) {
        match strategy {
            Strategy::RootPaths => {
                *probes += 1;
                (self.rp.as_ref().expect("ROOTPATHS not built").0.lookup_free(q), true)
            }
            Strategy::DataPaths => {
                *probes += 1;
                (self.dp.as_ref().expect("DATAPATHS not built").0.lookup_free(q), true)
            }
            Strategy::Edge => {
                // The Edge chain must walk every step regardless: interior
                // tags are only verifiable through backward-link probes.
                let (e, _) = self.edge.as_ref().expect("Edge not built");
                (e.eval_pcsubpath(q), false)
            }
            Strategy::DataGuideEdge => (self.eval_dataguide_edge(q, interior), false),
            Strategy::IndexFabricEdge => (self.eval_fabric_edge(q, interior), false),
            Strategy::Asr => {
                let (a, _) = self.asr.as_ref().expect("ASR not built");
                (a.eval_pcsubpath(q), true)
            }
            Strategy::JoinIndex => (self.eval_join_index(q, interior), false),
            Strategy::Auto => unreachable!("Auto resolves before execution"),
        }
    }

    /// DG+Edge (§5.1.2): the DataGuide answers anchored structural paths;
    /// values come from the Edge value index and are joined on node id;
    /// interior ids are recovered with backward-link walks; `//` patterns
    /// fall back to the Edge chain entirely.
    fn eval_dataguide_edge(&self, q: &PcSubpathQuery, interior: bool) -> Vec<PathMatch> {
        let (dg, _) = self.dg.as_ref().expect("DataGuide not built");
        let (edge, _) = self.edge.as_ref().expect("Edge not built");
        if !q.anchored {
            return edge.eval_pcsubpath(q);
        }
        let path_ids = dg.path_instances(&q.tags);
        let leaf_ids: Vec<u64> = match &q.value {
            None => path_ids,
            Some(v) => {
                let valued: HashSet<u64> =
                    edge.nodes_with(*q.tags.last().unwrap(), Some(v)).into_iter().collect();
                path_ids.into_iter().filter(|id| valued.contains(id)).collect()
            }
        };
        if interior {
            self.materialize_by_walking(edge, q, leaf_ids)
        } else {
            leaf_only_matches(q, leaf_ids)
        }
    }

    /// IF+Edge (§5.1.2): the fabric answers valued root-to-leaf paths in
    /// one probe; everything else falls back to the Edge chain.
    fn eval_fabric_edge(&self, q: &PcSubpathQuery, interior: bool) -> Vec<PathMatch> {
        let (fab, _) = self.fab.as_ref().expect("IndexFabric not built");
        let (edge, _) = self.edge.as_ref().expect("Edge not built");
        match (&q.value, q.anchored) {
            (Some(v), true) => {
                let leaf_ids = fab.leaf_instances(&q.tags, v);
                if interior {
                    self.materialize_by_walking(edge, q, leaf_ids)
                } else {
                    // The paper's Fig. 11 case: a fully-specified valued
                    // path is one fabric probe, nothing else.
                    leaf_only_matches(q, leaf_ids)
                }
            }
            _ => edge.eval_pcsubpath(q),
        }
    }

    /// Join Indices (§5.2.6): constants resolve through the Edge value
    /// index; endpoints and interior positions come from the per-path
    /// table pairs.
    fn eval_join_index(&self, q: &PcSubpathQuery, interior: bool) -> Vec<PathMatch> {
        let (ji, _) = self.ji.as_ref().expect("JoinIndices not built");
        match &q.value {
            Some(v) => {
                let (edge, _) = self.edge.as_ref().expect("Edge not built");
                let leaves = edge.nodes_with(*q.tags.last().unwrap(), Some(v));
                if interior {
                    ji.eval_pcsubpath_with_leaves(q, &leaves)
                } else {
                    // Path membership still needs one backward probe per
                    // candidate per matching expression; interior
                    // positions are skipped.
                    let mut out = Vec::new();
                    for (path, split) in ji.matching_expressions(q) {
                        for &leaf in &leaves {
                            if q.tags.len() == 1 || !ji.first_ids(&path, split, leaf).is_empty() {
                                out.push(PathMatch {
                                    head: 0,
                                    tags: vec![*q.tags.last().unwrap()],
                                    ids: vec![leaf],
                                });
                            }
                        }
                    }
                    out.sort_by(|a, b| a.ids.cmp(&b.ids));
                    out.dedup_by(|a, b| a.ids == b.ids);
                    out
                }
            }
            None => ji.eval_pcsubpath_structural(q),
        }
    }

    /// Recovers interior step ids for known root-anchored leaf matches by
    /// backward-link walks (one probe per step per candidate).
    fn materialize_by_walking(
        &self,
        edge: &EdgeTable,
        q: &PcSubpathQuery,
        leaf_ids: Vec<u64>,
    ) -> Vec<PathMatch> {
        let k = q.tags.len();
        leaf_ids
            .into_iter()
            .filter_map(|leaf| {
                let mut ids = vec![0u64; k];
                ids[k - 1] = leaf;
                let mut cur = leaf;
                for i in (0..k - 1).rev() {
                    let (parent, _) = edge.parent_of(cur)?;
                    ids[i] = parent;
                    cur = parent;
                }
                Some(PathMatch { head: 0, tags: q.tags.clone(), ids })
            })
            .collect()
    }

    /// Converts matches into binding rows; applies long-value rechecks;
    /// captures ancestor lists for segment roots when available.
    fn rows_from_matches(
        &self,
        n: usize,
        nodes: &[usize],
        q: &PcSubpathQuery,
        matches: &[PathMatch],
        full_root: bool,
    ) -> Vec<Row> {
        let k = nodes.len();
        let recheck = q.value.as_deref().filter(|v| value_needs_recheck(v));
        let mut rows = Vec::with_capacity(matches.len());
        for m in matches {
            // Leaf-only matches (interior positions skipped) bind just the
            // final step; full matches bind every step.
            let bound = m.ids.len().min(k);
            let tail = &m.ids[m.ids.len() - bound..];
            let nodes = &nodes[k - bound..];
            if let Some(v) = recheck {
                let leaf = NodeId(*tail.last().unwrap());
                if self.forest().value_str(leaf) != Some(v) {
                    continue;
                }
            }
            let mut row = Row::new(n);
            for (&node, &id) in nodes.iter().zip(tail) {
                row.bind[node] = id;
            }
            if full_root && m.ids.len() > bound {
                row.anc.push((nodes[0], Arc::new(m.ids[..m.ids.len() - bound].to_vec())));
            } else if full_root {
                row.anc.push((nodes[0], Arc::new(Vec::new())));
            }
            rows.push(row);
        }
        rows
    }

    /// Ancestors of `id`, preferring the captured IdList prefix, falling
    /// back to backward-link walks (Edge-family) or the base tree.
    fn ancestor_ids(&self, row: &Row, node: usize, probes: &mut u64) -> Arc<Vec<u64>> {
        if let Some(anc) = row.ancestors_of(node) {
            return anc.clone();
        }
        let id = row.bind[node];
        debug_assert_ne!(id, UNBOUND);
        if let Some((edge, _)) = &self.edge {
            return Arc::new(edge.ancestors_of(id));
        }
        // Base-data fallback: one lookup per ancestor step, equivalent in
        // cost to the backward-link walk.
        let mut path = self.forest().root_path_ids(NodeId(id));
        path.pop(); // drop the node itself
        *probes += path.len() as u64;
        path.reverse();
        Arc::new(path.into_iter().map(|n| n.0).collect())
    }

    fn join(
        &self,
        left: Vec<Row>,
        right: Vec<Row>,
        how: &JoinHow,
        semi: bool,
        probes: &mut u64,
    ) -> Vec<Row> {
        match how {
            JoinHow::SharedNode { deepest, shared } => {
                if semi {
                    // Existence filter: keep each left row once if any
                    // consistent right row exists.
                    let mut table: HashMap<u64, Vec<&Row>> = HashMap::new();
                    for r in &right {
                        table.entry(r.bind[*deepest]).or_default().push(r);
                    }
                    return left
                        .into_iter()
                        .filter(|r1| {
                            table.get(&r1.bind[*deepest]).is_some_and(|bucket| {
                                bucket.iter().any(|r2| {
                                    shared.iter().all(|&s| {
                                        r1.bind[s] == UNBOUND
                                            || r2.bind[s] == UNBOUND
                                            || r1.bind[s] == r2.bind[s]
                                    })
                                })
                            })
                        })
                        .collect();
                }
                let mut table: HashMap<u64, Vec<&Row>> = HashMap::new();
                for r in &left {
                    table.entry(r.bind[*deepest]).or_default().push(r);
                }
                let mut out = Vec::new();
                for r2 in &right {
                    let Some(bucket) = table.get(&r2.bind[*deepest]) else { continue };
                    for r1 in bucket {
                        if shared.iter().all(|&s| {
                            r1.bind[s] == UNBOUND
                                || r2.bind[s] == UNBOUND
                                || r1.bind[s] == r2.bind[s]
                        }) {
                            out.push(merge_rows(r1, r2));
                        }
                    }
                }
                out
            }
            JoinHow::AncestorOf { upper, seg_root } => {
                if semi {
                    // Keep left rows whose `upper` binding is an ancestor
                    // of some right segment root.
                    let mut anc_union: HashSet<u64> = HashSet::new();
                    for r2 in &right {
                        anc_union.extend(self.ancestor_ids(r2, *seg_root, probes).iter());
                    }
                    return left
                        .into_iter()
                        .filter(|r| anc_union.contains(&r.bind[*upper]))
                        .collect();
                }
                if self.structural_ad_joins {
                    return self.structural_join(left, right, *upper, *seg_root);
                }
                // left rows bind `upper`; right rows bind the segment
                // root; unnest right's ancestors and equi-join.
                let mut table: HashMap<u64, Vec<&Row>> = HashMap::new();
                for r in &left {
                    table.entry(r.bind[*upper]).or_default().push(r);
                }
                let mut out = Vec::new();
                for r2 in &right {
                    let ancs = self.ancestor_ids(r2, *seg_root, probes);
                    for &a in ancs.iter() {
                        if let Some(bucket) = table.get(&a) {
                            for r1 in bucket {
                                out.push(merge_rows(r1, r2));
                            }
                        }
                    }
                }
                out
            }
            JoinHow::DescendantBound { upper, seg_root } => {
                if semi {
                    // Keep left rows with some right `upper` among their
                    // segment root's ancestors.
                    let uppers: HashSet<u64> = right.iter().map(|r| r.bind[*upper]).collect();
                    return left
                        .into_iter()
                        .filter(|r1| {
                            self.ancestor_ids(r1, *seg_root, probes)
                                .iter()
                                .any(|a| uppers.contains(a))
                        })
                        .collect();
                }
                if self.structural_ad_joins {
                    return self.structural_join(right, left, *upper, *seg_root);
                }
                // left rows bind the lower segment root; right rows bind
                // `upper`.
                let mut table: HashMap<u64, Vec<&Row>> = HashMap::new();
                for r in &right {
                    table.entry(r.bind[*upper]).or_default().push(r);
                }
                let mut out = Vec::new();
                for r1 in &left {
                    let ancs = self.ancestor_ids(r1, *seg_root, probes);
                    for &a in ancs.iter() {
                        if let Some(bucket) = table.get(&a) {
                            for r2 in bucket {
                                out.push(merge_rows(r1, r2));
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Stitches an ancestor-descendant edge with the stack-based
    /// structural join (§6's alternative): one merge pass over the
    /// interval-sorted binding sets instead of ancestor unnesting.
    fn structural_join(
        &self,
        upper_rows: Vec<Row>,
        lower_rows: Vec<Row>,
        upper: usize,
        seg_root: usize,
    ) -> Vec<Row> {
        let upper_ids: Vec<u64> = upper_rows.iter().map(|r| r.bind[upper]).collect();
        let lower_ids: Vec<u64> = lower_rows.iter().map(|r| r.bind[seg_root]).collect();
        let pairs = crate::stitch::containment_join(self.forest(), &upper_ids, &lower_ids);
        let mut by_upper: HashMap<u64, Vec<&Row>> = HashMap::new();
        for r in &upper_rows {
            by_upper.entry(r.bind[upper]).or_default().push(r);
        }
        let mut by_lower: HashMap<u64, Vec<&Row>> = HashMap::new();
        for r in &lower_rows {
            by_lower.entry(r.bind[seg_root]).or_default().push(r);
        }
        let mut out = Vec::new();
        for (a, d) in pairs {
            if let (Some(us), Some(ls)) = (by_upper.get(&a), by_lower.get(&d)) {
                for u in us {
                    for l in ls {
                        out.push(merge_rows(u, l));
                    }
                }
            }
        }
        out
    }

    /// The index-nested-loop extension (§3.3): group rows by the anchor
    /// binding, issue one BoundIndex probe per distinct head, and fan the
    /// results back out.
    fn inlj_extend(
        &self,
        compiled: &CompiledTwig,
        rows: Vec<Row>,
        probe: &ProbeSpec,
        semi: bool,
        probes: &mut u64,
        rows_fetched: &mut u64,
    ) -> Vec<Row> {
        let (dp, _) = self.dp.as_ref().expect("INLJ requires DATAPATHS");
        let anchor_tag = self
            .forest()
            .dict()
            .lookup(&compiled.twig.nodes[probe.anchor].tag)
            .expect("anchor tag resolved during decompose");
        let recheck = probe.pattern.value.as_deref().filter(|v| value_needs_recheck(v));
        let mut by_head: HashMap<u64, Vec<Row>> = HashMap::new();
        for r in rows {
            by_head.entry(r.bind[probe.anchor]).or_default().push(r);
        }
        let mut out = Vec::new();
        for (head, group) in by_head {
            debug_assert_ne!(head, UNBOUND);
            *probes += 1;
            let matches = dp.lookup_bound(head, anchor_tag, &probe.pattern);
            *rows_fetched += matches.len() as u64;
            if semi {
                // Existence probe: the head survives if any match passes
                // the (rare) long-value recheck.
                let hit = matches.iter().any(|m| match recheck {
                    None => true,
                    Some(v) => self.forest().value_str(NodeId(*m.ids.last().unwrap())) == Some(v),
                });
                if hit {
                    out.extend(group);
                }
                continue;
            }
            for m in matches {
                let k = probe.step_nodes.len();
                let tail = &m.ids[m.ids.len() - k..];
                if let Some(v) = recheck {
                    if self.forest().value_str(NodeId(*tail.last().unwrap())) != Some(v) {
                        continue;
                    }
                }
                for r in &group {
                    let mut nr = r.clone();
                    for (&node, &id) in probe.step_nodes.iter().zip(tail) {
                        nr.bind[node] = id;
                    }
                    out.push(nr);
                }
            }
        }
        out
    }
}

/// Shape of a twig for calibration-sample keys: tags and axes with
/// value literals elided (`=?`) and the output node starred, so
/// repeated queries differing only in constants aggregate together.
pub fn twig_shape(twig: &TwigPattern) -> String {
    fn node(t: &TwigPattern, i: usize, out: &mut String) {
        let n = &t.nodes[i];
        out.push_str(&n.tag);
        if n.value.is_some() {
            out.push_str("=?");
        }
        if i == t.output {
            out.push('*');
        }
        for (axis, c) in &n.children {
            out.push('[');
            out.push_str(&axis.to_string());
            node(t, *c, out);
            out.push(']');
        }
    }
    let mut s = twig.root_axis.to_string();
    node(twig, 0, &mut s);
    s
}

/// Matches carrying only the final step's id (interior skipped).
fn leaf_only_matches(q: &PcSubpathQuery, leaf_ids: Vec<u64>) -> Vec<PathMatch> {
    let leaf_tag = *q.tags.last().unwrap();
    leaf_ids
        .into_iter()
        .map(|id| PathMatch { head: 0, tags: vec![leaf_tag], ids: vec![id] })
        .collect()
}

fn merge_rows(r1: &Row, r2: &Row) -> Row {
    let mut bind = r1.bind.clone();
    for (i, &v) in r2.bind.iter().enumerate() {
        if v != UNBOUND {
            bind[i] = v;
        }
    }
    let mut anc = r1.anc.clone();
    for (n, a) in &r2.anc {
        if !anc.iter().any(|(m, _)| m == n) {
            anc.push((*n, a.clone()));
        }
    }
    Row { bind, anc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;
    use xtwig_xml::naive;
    use xtwig_xml::tree::fig1_book_document;

    fn engine(forest: &XmlForest) -> QueryEngine<&XmlForest> {
        QueryEngine::build(forest, EngineOptions { pool_pages: 1024, ..Default::default() })
    }

    fn check_all_strategies(engine: &QueryEngine<&XmlForest>, xpath: &str) {
        let twig = parse_xpath(xpath).unwrap();
        let expected: BTreeSet<u64> =
            naive::select(engine.forest(), &twig).into_iter().map(|n| n.0).collect();
        for s in Strategy::ALL {
            let got = engine.answer(&twig, s);
            assert_eq!(
                got.ids,
                expected,
                "strategy {} disagrees with oracle on {xpath}",
                s.label()
            );
        }
    }

    #[test]
    fn all_strategies_answer_the_intro_query() {
        let f = fig1_book_document();
        let e = engine(&f);
        check_all_strategies(&e, "/book[title='XML']//author[fn='jane'][ln='doe']");
    }

    #[test]
    fn single_path_queries() {
        let f = fig1_book_document();
        let e = engine(&f);
        for q in [
            "/book/title[. = 'XML']",
            "/book/allauthors/author/fn[. = 'jane']",
            "/book/allauthors/author",
            "/book",
            "//title",
            "//author/ln[. = 'doe']",
            "//section/head",
        ] {
            check_all_strategies(&e, q);
        }
    }

    #[test]
    fn branching_queries() {
        let f = fig1_book_document();
        let e = engine(&f);
        for q in [
            "/book[year = '2000']/chapter/title",
            "//author[fn = 'jane'][ln = 'doe']",
            "//author[fn = 'jane']/ln",
            "/book[title = 'XML'][year = '2000']//section/head",
            "//chapter[title = 'XML']/section/head",
        ] {
            check_all_strategies(&e, q);
        }
    }

    #[test]
    fn recursive_edges_inside_twig() {
        let f = fig1_book_document();
        let e = engine(&f);
        for q in [
            "/book//head",
            "/book//author[fn = 'john']",
            "/book[title = 'XML']//section[head = 'Origins']",
            "//allauthors//ln[. = 'doe']",
            "/book//contact/detail",
        ] {
            check_all_strategies(&e, q);
        }
    }

    #[test]
    fn empty_results_are_consistent() {
        let f = fig1_book_document();
        let e = engine(&f);
        for q in [
            "/book/title[. = 'JSON']",
            "//author[fn = 'jane'][ln = 'poe']/nickname[. = 'nobody']",
            "/chapter/title", // chapter is not a document root
            "//unknown_tag_never_seen",
        ] {
            check_all_strategies(&e, q);
        }
    }

    #[test]
    fn inlj_and_merge_agree() {
        let f = fig1_book_document();
        let e = engine(&f);
        // Low branch point with a selective branch: //author[fn='john']/nickname
        let twig = parse_xpath("//author[fn = 'john']/nickname").unwrap();
        let expected: BTreeSet<u64> = naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
        let dp = e.answer(&twig, Strategy::DataPaths);
        let rp = e.answer(&twig, Strategy::RootPaths);
        assert_eq!(dp.ids, expected);
        assert_eq!(rp.ids, expected);
    }

    #[test]
    fn metrics_populate() {
        let f = fig1_book_document();
        let e = engine(&f);
        let twig = parse_xpath("//author[fn = 'jane'][ln = 'doe']").unwrap();
        let a = e.answer(&twig, Strategy::RootPaths);
        assert!(a.metrics.probes >= 2, "two subpath lookups");
        assert!(a.metrics.rows_fetched >= 2);
        assert!(a.metrics.logical_reads > 0);
        let edge = e.answer(&twig, Strategy::Edge);
        assert!(
            edge.metrics.probes > a.metrics.probes,
            "Edge must probe more than ROOTPATHS ({} vs {})",
            edge.metrics.probes,
            a.metrics.probes
        );
    }

    #[test]
    fn space_report_orders_like_fig9() {
        let f = fig1_book_document();
        let e = engine(&f);
        let rp = e.space_bytes(Strategy::RootPaths);
        let dp = e.space_bytes(Strategy::DataPaths);
        assert!(rp > 0 && dp > 0);
        assert!(dp >= rp, "DATAPATHS at least as large as ROOTPATHS");
        let ji = e.space_bytes(Strategy::JoinIndex);
        let asr = e.space_bytes(Strategy::Asr);
        assert!(ji > asr, "Fig 9: JI is the largest configuration");
    }

    #[test]
    fn pruned_engine_still_answers_off_workload_queries() {
        let f = fig1_book_document();
        let workload = vec![parse_xpath("/book[title='XML']//author[fn='jane']").unwrap()];
        let filter = crate::compress::workload_head_filter(&workload);
        let e = QueryEngine::build(
            &f,
            EngineOptions {
                strategies: vec![Strategy::DataPaths],
                pool_pages: 1024,
                head_filter_tags: Some(filter),
                ..Default::default()
            },
        );
        // Off-workload branching query must still be answered (merge plan
        // via the retained FreeIndex rows).
        let twig = parse_xpath("//chapter[title = 'XML']/section").unwrap();
        let expected: BTreeSet<u64> = naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
        let got = e.answer(&twig, Strategy::DataPaths);
        assert_eq!(got.ids, expected);
    }

    #[test]
    fn shared_engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryEngine<Arc<XmlForest>>>();
        assert_send_sync::<QueryAnswer>();
    }

    #[test]
    fn auto_in_build_options_materializes_every_strategy() {
        // `--strategies auto` must mean "build the full menu", not
        // "build nothing and persist an empty index".
        let f = fig1_book_document();
        let e = QueryEngine::build(
            &f,
            EngineOptions {
                strategies: vec![Strategy::Auto],
                pool_pages: 1024,
                ..Default::default()
            },
        );
        for s in Strategy::ALL {
            assert!(e.has_strategy(s), "{s}");
        }
        check_all_strategies(&e, "/book[title='XML']//author[fn='jane'][ln='doe']");
    }

    #[test]
    fn strategy_display_fromstr_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(s.to_string(), s.label());
            assert_eq!(s.label().parse::<Strategy>(), Ok(s));
            assert_eq!(s.label().to_lowercase().parse::<Strategy>(), Ok(s));
        }
        assert_eq!("ROOTPATHS".parse::<Strategy>(), Ok(Strategy::RootPaths));
        assert_eq!("dataguide".parse::<Strategy>(), Ok(Strategy::DataGuideEdge));
        assert!("nope".parse::<Strategy>().is_err());
    }

    #[test]
    fn arc_owned_engine_answers_like_borrowed() {
        let f = Arc::new(fig1_book_document());
        let e: QueryEngine =
            QueryEngine::build(f.clone(), EngineOptions { pool_pages: 1024, ..Default::default() });
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let expected: BTreeSet<u64> = naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
        for s in Strategy::ALL {
            assert!(e.has_strategy(s));
            assert_eq!(e.answer(&twig, s).ids, expected, "{s}");
        }
    }

    #[test]
    fn compile_then_answer_compiled_matches_answer() {
        let f = fig1_book_document();
        let e = engine(&f);
        let twig = parse_xpath("//author[fn = 'jane']/ln").unwrap();
        let (compiled, plan) = e.compile(&twig).unwrap();
        let direct = e.answer(&twig, Strategy::RootPaths);
        let precompiled = e.answer_compiled(&compiled, &plan, Strategy::RootPaths);
        assert_eq!(direct.ids, precompiled.ids);
        assert_eq!(direct.plan, precompiled.plan);
    }

    #[test]
    fn batch_dedupes_shared_subpath_probes() {
        let f = fig1_book_document();
        let e = engine(&f);
        let twigs: Vec<TwigPattern> = [
            "//author[fn = 'jane']/ln",
            "//author[fn = 'jane']/ln", // identical: every subpath memoized
            "//author[fn = 'jane']",    // shares the fn='jane' subpath
        ]
        .iter()
        .map(|q| parse_xpath(q).unwrap())
        .collect();
        let (answers, stats) = e.answer_batch(&twigs, Strategy::RootPaths);
        assert_eq!(answers.len(), 3);
        for (t, a) in twigs.iter().zip(&answers) {
            let expected: BTreeSet<u64> = naive::select(&f, t).into_iter().map(|n| n.0).collect();
            assert_eq!(a.ids, expected, "{t}");
        }
        assert!(stats.hits >= 3, "duplicate subpaths must hit the memo: {stats:?}");
        // Memo hits issue no probes: the duplicate query is free.
        assert_eq!(answers[1].metrics.probes, 0);
    }

    #[test]
    fn batch_agrees_across_all_strategies() {
        let f = fig1_book_document();
        let e = engine(&f);
        let twigs: Vec<TwigPattern> =
            ["/book[title = 'XML']/year", "/book[title = 'XML']//section/head", "//section/head"]
                .iter()
                .map(|q| parse_xpath(q).unwrap())
                .collect();
        for s in Strategy::ALL {
            let (answers, _) = e.answer_batch(&twigs, s);
            for (t, a) in twigs.iter().zip(&answers) {
                let expected: BTreeSet<u64> =
                    naive::select(&f, t).into_iter().map(|n| n.0).collect();
                assert_eq!(a.ids, expected, "{s} on {t}");
            }
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_and_answers_agree() {
        let mut f = XmlForest::new();
        for i in 0..7 {
            let mut b = f.builder();
            b.open("book");
            b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
            b.open("allauthors");
            b.open("author");
            b.leaf("fn", "jane");
            b.leaf("ln", if i == 3 { "doe" } else { "poe" });
            b.close();
            b.close();
            b.close();
            b.finish();
        }
        let opts = || EngineOptions { pool_pages: 1024, ..Default::default() };
        let seq = QueryEngine::build(&f, opts());
        for shards in [1, 2, 3, 7] {
            let par = QueryEngine::build_parallel(&f, opts(), shards);
            for s in Strategy::ALL {
                assert_eq!(
                    par.structure_digest(s),
                    seq.structure_digest(s),
                    "{s} pages differ at {shards} shards"
                );
            }
            let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
            for s in Strategy::ALL {
                assert_eq!(par.answer(&twig, s).ids, seq.answer(&twig, s).ids, "{s}");
            }
        }
    }

    #[test]
    fn multi_document_queries() {
        let mut f = XmlForest::new();
        for i in 0..5 {
            let mut b = f.builder();
            b.open("book");
            b.leaf("title", if i % 2 == 0 { "XML" } else { "SQL" });
            b.open("allauthors");
            b.open("author");
            b.leaf("fn", "jane");
            b.leaf("ln", if i == 2 { "doe" } else { "poe" });
            b.close();
            b.close();
            b.close();
            b.finish();
        }
        let e = engine(&f);
        check_all_strategies(&e, "/book[title='XML']//author[fn='jane'][ln='doe']");
        check_all_strategies(&e, "/book/title[. = 'SQL']");
        check_all_strategies(&e, "//author[ln = 'poe']");
    }
}
