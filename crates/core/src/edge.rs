//! The Edge-table baseline (paper §5.1.2).
//!
//! XML stored as one row per node in an Edge relation
//! `(child, parent, tag, value)` [Florescu/Kossmann], indexed the way the
//! paper's Edge configuration is: a Lore-style **value index** on
//! `(tag, value) → node`, a **forward link** index on
//! `(parent, tag) → child`, and a **backward link** index on
//! `child → (parent, parent-tag)` [McHugh/Widom].
//!
//! Path evaluation performs "a join operation for each step along the
//! path" (§5.2.1): candidates come from one value-index probe, then each
//! parent-child step is an index-nested-loop step through the backward
//! link index. The per-candidate, per-step probes are exactly the cost
//! the paper attributes to this baseline.

use crate::family::{
    value_key_prefix, FamilyPosition, FreeIndex, IdListSublist, IndexedColumn, PathIndex,
    PathMatch, PcSubpathQuery, SchemaPathSubset,
};
use crate::parallel::{map_shards, ShardPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtwig_btree::{bulk_build, merge_sorted_runs, BTree, BTreeOptions};
use xtwig_rel::codec::KeyBuf;
use xtwig_rel::value::{serialize_tuple, Value};
use xtwig_rel::HeapFile;
use xtwig_storage::BufferPool;
use xtwig_xml::{NodeId, TagId, XmlForest};

/// Edge table plus its three Lore-style indexes.
pub struct EdgeTable {
    heap: HeapFile,
    /// `(tag, value, child) → ()` — the value index (structural rows have
    /// a null value component, so a `(tag)` prefix probe enumerates a tag).
    node_idx: BTree,
    /// `(parent, tag, child) → ()` — the forward link index.
    flink: BTree,
    /// `child → (parent, parent_tag)` — the backward link index.
    blink: BTree,
    /// Index probes issued (for the harness' lookup counts).
    lookups: AtomicU64,
}

fn node_key(tag: TagId, value: Option<&str>, child: u64) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_i64(i64::from(tag.0 as i32));
    match value {
        None => {
            k.push_null();
        }
        Some(v) => {
            k.push_str(value_key_prefix(v));
        }
    }
    k.push_u64(child);
    k.finish()
}

fn flink_key(parent: u64, tag: TagId, child: u64) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_u64(parent);
    k.push_i64(i64::from(tag.0 as i32));
    k.push_u64(child);
    k.finish()
}

fn blink_key(child: u64) -> Vec<u8> {
    let mut k = KeyBuf::new();
    k.push_u64(child);
    k.finish()
}

fn blink_payload(parent: u64, parent_tag: TagId) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&parent.to_le_bytes());
    v.extend_from_slice(&parent_tag.0.to_le_bytes());
    v
}

fn decode_blink(bytes: &[u8]) -> (u64, TagId) {
    let mut p = [0u8; 8];
    p.copy_from_slice(&bytes[0..8]);
    let mut t = [0u8; 4];
    t.copy_from_slice(&bytes[8..12]);
    (u64::from_le_bytes(p), TagId(u32::from_le_bytes(t)))
}

impl EdgeTable {
    /// Builds the Edge table and its indexes from `forest` into `pool`.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>) -> Self {
        Self::build_sharded(forest, pool, &ShardPlan::sequential(forest))
    }

    /// Shard-parallel [`Self::build`]: workers serialize each shard's
    /// heap tuples and sort its index-entry runs; the calling thread
    /// then appends the tuples in shard (= document) order and
    /// bulk-loads the merged runs, reproducing the sequential page
    /// image exactly (heap pages first, then the three trees).
    ///
    /// With one shard (or one worker) the heap tuples stream straight
    /// into the heap file instead of being buffered — holding the whole
    /// serialized tuple set in memory is the price of cross-thread
    /// enumeration and must not be paid by the sequential path.
    pub fn build_sharded(forest: &XmlForest, pool: Arc<BufferPool>, plan: &ShardPlan) -> Self {
        let mut heap = HeapFile::new(pool.clone());
        let buffered = plan.workers() > 1 && plan.shard_count() > 1;
        type ShardOut = (
            Vec<Vec<u8>>,
            Vec<(Vec<u8>, Vec<u8>)>,
            Vec<(Vec<u8>, Vec<u8>)>,
            Vec<(Vec<u8>, Vec<u8>)>,
        );
        let enumerate = |range, sink: &mut dyn FnMut(Vec<u8>)| {
            let mut node_entries = Vec::new();
            let mut flink_entries = Vec::new();
            let mut blink_entries = Vec::new();
            for node in forest.iter_range(range) {
                let parent = forest.parent(node).unwrap_or(NodeId::VIRTUAL_ROOT);
                let tag = forest.tag(node);
                let value = forest.value_str(node);
                sink(serialize_tuple(&[
                    Value::id(node.0),
                    Value::id(parent.0),
                    Value::Int(i64::from(tag.0)),
                    value.map_or(Value::Null, |v| Value::Str(v.to_owned())),
                ]));
                node_entries.push((node_key(tag, value, node.0), Vec::new()));
                flink_entries.push((flink_key(parent.0, tag, node.0), Vec::new()));
                let parent_tag = forest.tag(parent);
                blink_entries.push((blink_key(node.0), blink_payload(parent.0, parent_tag)));
            }
            node_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            flink_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            blink_entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            (node_entries, flink_entries, blink_entries)
        };
        let mut node_runs = Vec::with_capacity(plan.shard_count());
        let mut flink_runs = Vec::with_capacity(plan.shard_count());
        let mut blink_runs = Vec::with_capacity(plan.shard_count());
        if buffered {
            let shards: Vec<ShardOut> = map_shards(plan, |range| {
                let mut tuples = Vec::new();
                let (n, f, b) = enumerate(range, &mut |t| tuples.push(t));
                (tuples, n, f, b)
            });
            for (tuples, node_entries, flink_entries, blink_entries) in shards {
                for t in &tuples {
                    heap.append(t);
                }
                node_runs.push(node_entries);
                flink_runs.push(flink_entries);
                blink_runs.push(blink_entries);
            }
        } else {
            for &range in plan.ranges() {
                let (n, f, b) = enumerate(range, &mut |t| {
                    heap.append(&t);
                });
                node_runs.push(n);
                flink_runs.push(f);
                blink_runs.push(b);
            }
        }
        let opts = BTreeOptions::default();
        EdgeTable {
            heap,
            node_idx: bulk_build(pool.clone(), opts, merge_sorted_runs(node_runs)),
            flink: bulk_build(pool.clone(), opts, merge_sorted_runs(flink_runs)),
            blink: bulk_build(pool, opts, merge_sorted_runs(blink_runs)),
            lookups: AtomicU64::new(0),
        }
    }

    /// Number of index probes issued since the last [`Self::take_lookups`].
    pub fn take_lookups(&self) -> u64 {
        self.lookups.swap(0, Ordering::Relaxed)
    }

    fn count_lookup(&self) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
    }

    /// All node ids with `tag` and (optionally) `value` — one value-index
    /// probe.
    pub fn nodes_with(&self, tag: TagId, value: Option<&str>) -> Vec<u64> {
        self.count_lookup();
        let mut prefix = KeyBuf::new();
        prefix.push_i64(i64::from(tag.0 as i32));
        if let Some(v) = value {
            prefix.push_str(value_key_prefix(v));
        }
        self.node_idx
            .scan_prefix(prefix.as_bytes())
            .map(|(k, _)| {
                // id is the trailing u64 component.
                let mut b = [0u8; 8];
                b.copy_from_slice(&k[k.len() - 8..]);
                u64::from_be_bytes(b)
            })
            .collect()
    }

    /// Parent and parent-tag of `id` — one backward-link probe.
    pub fn parent_of(&self, id: u64) -> Option<(u64, TagId)> {
        self.count_lookup();
        self.blink.get(&blink_key(id)).map(|v| decode_blink(&v))
    }

    /// Children of `parent` with `tag` — one forward-link probe.
    pub fn children_with(&self, parent: u64, tag: TagId) -> Vec<u64> {
        self.count_lookup();
        let mut prefix = KeyBuf::new();
        prefix.push_u64(parent);
        prefix.push_i64(i64::from(tag.0 as i32));
        self.flink
            .scan_prefix(prefix.as_bytes())
            .map(|(k, _)| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&k[k.len() - 8..]);
                u64::from_be_bytes(b)
            })
            .collect()
    }

    /// All proper ancestors of `id` bottom-up (one blink probe per step)
    /// — how Edge-family plans find branch points above a node.
    pub fn ancestors_of(&self, id: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some((parent, _)) = self.parent_of(cur) {
            if parent == 0 {
                break;
            }
            out.push(parent);
            cur = parent;
        }
        out
    }

    /// Evaluates a PCsubpath by one value-index probe plus a
    /// backward-link walk per candidate per step — the §5.2.1 join chain.
    /// Returned matches carry exactly the pattern's step ids.
    pub fn eval_pcsubpath(&self, q: &PcSubpathQuery) -> Vec<PathMatch> {
        let k = q.tags.len();
        let leaf_tag = *q.tags.last().unwrap();
        let candidates = self.nodes_with(leaf_tag, q.value.as_deref());
        let mut out = Vec::new();
        'cand: for leaf in candidates {
            let mut ids = vec![0u64; k];
            ids[k - 1] = leaf;
            let mut cur = leaf;
            for step in (0..k - 1).rev() {
                let Some((parent, ptag)) = self.parent_of(cur) else { continue 'cand };
                if parent == 0 || ptag != q.tags[step] {
                    continue 'cand;
                }
                ids[step] = parent;
                cur = parent;
            }
            if q.anchored {
                match self.parent_of(cur) {
                    Some((0, _)) => {}
                    _ => continue 'cand,
                }
            }
            out.push(PathMatch { head: 0, tags: q.tags.clone(), ids });
        }
        out
    }

    /// Row count of the Edge relation.
    pub fn rows(&self) -> u64 {
        self.heap.len()
    }

    /// Physical shape of the three index trees plus the heap, for the
    /// optimizer's catalog (see [`crate::auto`]).
    pub fn cost_profile(&self) -> xtwig_opt::EdgeProfile {
        xtwig_opt::EdgeProfile {
            value: crate::auto::tree_profile(&self.node_idx),
            blink: crate::auto::tree_profile(&self.blink),
            flink: crate::auto::tree_profile(&self.flink),
            heap_pages: self.heap.space_bytes() / xtwig_storage::PAGE_SIZE as u64,
        }
    }
}

impl EdgeTable {
    /// Writes the catalog metadata a reopen needs (see
    /// [`crate::persist`]): the heap's page list and row count plus the
    /// three index trees' shapes.
    pub(crate) fn write_meta(&self, w: &mut crate::persist::ByteWriter) {
        w.push_u32(self.heap.page_ids().len() as u32);
        for &p in self.heap.page_ids() {
            w.push_u32(p.0);
        }
        w.push_u64(self.heap.len());
        crate::persist::write_tree_meta(w, &self.node_idx);
        crate::persist::write_tree_meta(w, &self.flink);
        crate::persist::write_tree_meta(w, &self.blink);
    }

    /// Reattaches a persisted Edge configuration over `pool`.
    pub(crate) fn open_meta(
        r: &mut crate::persist::ByteReader<'_>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, crate::persist::FormatError> {
        let n = r.u32()? as usize;
        let mut pages = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let p = xtwig_storage::PageId(r.u32()?);
            if p.0 >= pool.num_pages() {
                return crate::persist::format_err(format!("heap page {p} outside its pool"));
            }
            pages.push(p);
        }
        let rows = r.u64()?;
        let heap = HeapFile::from_parts(pool.clone(), pages, rows);
        let node_idx = crate::persist::read_tree_meta(r, pool.clone())?;
        let flink = crate::persist::read_tree_meta(r, pool.clone())?;
        let blink = crate::persist::read_tree_meta(r, pool)?;
        Ok(EdgeTable { heap, node_idx, flink, blink, lookups: AtomicU64::new(0) })
    }
}

impl PathIndex for EdgeTable {
    fn name(&self) -> &'static str {
        "Edge"
    }

    /// The Edge configuration's indexes are the length-1 members of the
    /// family: the value index (`SchemaPath`+`LeafValue`, last id) and
    /// link indexes (`HeadId`+`SchemaPath`, last id) of Fig. 3.
    fn family_position(&self) -> FamilyPosition {
        FamilyPosition {
            schema_paths: SchemaPathSubset::Length1,
            idlist: IdListSublist::LastOnly,
            indexed: vec![IndexedColumn::SchemaPath, IndexedColumn::LeafValue],
        }
    }

    fn space_bytes(&self) -> u64 {
        self.heap.space_bytes()
            + self.node_idx.space_bytes()
            + self.flink.space_bytes()
            + self.blink.space_bytes()
    }
}

impl FreeIndex for EdgeTable {
    /// Multi-probe evaluation (the Edge baseline has no single-lookup
    /// answer; this satisfies the interface so the engine can treat all
    /// strategies uniformly, while the probe counter records the true
    /// cost).
    fn lookup_free(&self, q: &PcSubpathQuery) -> Vec<PathMatch> {
        self.eval_pcsubpath(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn build(forest: &XmlForest) -> EdgeTable {
        EdgeTable::build(forest, Arc::new(BufferPool::in_memory(8192)))
    }

    fn q(
        forest: &XmlForest,
        steps: &[&str],
        anchored: bool,
        value: Option<&str>,
    ) -> PcSubpathQuery {
        PcSubpathQuery::resolve(forest.dict(), steps, anchored, value).unwrap()
    }

    #[test]
    fn value_index_probe() {
        let f = fig1_book_document();
        let e = build(&f);
        let fn_tag = f.dict().lookup("fn").unwrap();
        let mut janes = e.nodes_with(fn_tag, Some("jane"));
        janes.sort_unstable();
        assert_eq!(janes, vec![7, 42]);
        let mut all_fn = e.nodes_with(fn_tag, None);
        all_fn.sort_unstable();
        assert_eq!(all_fn, vec![7, 22, 42]);
    }

    #[test]
    fn link_indexes() {
        let f = fig1_book_document();
        let e = build(&f);
        assert_eq!(e.parent_of(7), Some((6, f.dict().lookup("author").unwrap())));
        assert_eq!(e.parent_of(1), Some((0, TagId::VIRTUAL_ROOT)));
        assert_eq!(e.parent_of(99_999), None);
        let author = f.dict().lookup("author").unwrap();
        let mut authors = e.children_with(5, author);
        authors.sort_unstable();
        assert_eq!(authors, vec![6, 21, 41]);
        assert_eq!(e.ancestors_of(7), vec![6, 5, 1]);
        assert_eq!(e.ancestors_of(1), Vec::<u64>::new());
    }

    #[test]
    fn pcsubpath_eval_matches_index_semantics() {
        let f = fig1_book_document();
        let e = build(&f);
        let ms = e.eval_pcsubpath(&q(&f, &["author", "fn"], false, Some("jane")));
        let mut ids: Vec<Vec<u64>> = ms.iter().map(|m| m.ids.clone()).collect();
        ids.sort();
        assert_eq!(ids, vec![vec![6, 7], vec![41, 42]]);
    }

    #[test]
    fn anchored_eval_checks_document_root() {
        let f = fig1_book_document();
        let e = build(&f);
        // /book/title matches; /title alone does not (title not a root).
        assert_eq!(e.eval_pcsubpath(&q(&f, &["book", "title"], true, None)).len(), 1);
        assert!(e.eval_pcsubpath(&q(&f, &["title"], true, None)).is_empty());
        // //title matches both titles.
        assert_eq!(e.eval_pcsubpath(&q(&f, &["title"], false, None)).len(), 2);
    }

    #[test]
    fn probe_count_grows_with_path_length_and_candidates() {
        // The effect behind Fig. 11: per-step joins get pricier as
        // selectivity drops.
        let f = fig1_book_document();
        let e = build(&f);
        e.take_lookups();
        e.eval_pcsubpath(&q(&f, &["book", "allauthors", "author", "fn"], true, None));
        let probes_unselective = e.take_lookups();
        e.eval_pcsubpath(&q(&f, &["book", "allauthors", "author", "fn"], true, Some("john")));
        let probes_selective = e.take_lookups();
        assert!(probes_unselective > probes_selective);
        // 3 candidates * (3 walk steps + 1 anchor check) + 1 value probe.
        assert_eq!(probes_unselective, 1 + 3 * 4);
        assert_eq!(probes_selective, 1 + 4);
    }

    #[test]
    fn mismatched_interior_tags_prune_candidates() {
        let f = fig1_book_document();
        let e = build(&f);
        // //chapter/fn: fn nodes exist but never under chapter.
        assert!(e.eval_pcsubpath(&q(&f, &["chapter", "fn"], false, None)).is_empty());
    }

    #[test]
    fn space_includes_heap_and_three_indexes() {
        let f = fig1_book_document();
        let e = build(&f);
        assert_eq!(e.rows(), (f.node_count() - 1) as u64);
        // heap + 3 trees, each at least a page.
        assert!(e.space_bytes() >= 4 * 8192);
    }
}
