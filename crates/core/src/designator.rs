//! Designator encoding of schema paths (paper §3.1).
//!
//! "Schema paths can be dictionary-encoded using special characters
//! (whose lengths depend on the dictionary size) as designators for the
//! schema components." This module is that encoding, tuned for B+-tree
//! keys:
//!
//! * Each [`TagId`] becomes a **prefix-free, non-zero** byte sequence:
//!   one byte (`0x02..=0xFE`) for the first 253 tags, or `0xFF` + 2 bytes
//!   for larger dictionaries. Both the paper's datasets stay in the
//!   1-byte regime (XMark has 902 distinct *paths* but < 100 tags).
//! * A path is its designators concatenated, closed by the terminator
//!   byte `0x01`.
//!
//! Because designators never contain `0x01` **as their first byte** and
//! the code is prefix-free, two probe forms fall out of plain byte-prefix
//! scans (paper §3.2):
//!
//! * **anchored** (`/a/b`): probe `des(a)·des(b)·0x01` — matches exactly
//!   the stored path, because the terminator pins the end.
//! * **recursive head** (`//a/b` over *reversed* stored paths): probe
//!   `des(b)·des(a)` without the terminator — matches every stored
//!   reversed path that begins with `b, a`, i.e. every data path that
//!   *ends* with `a/b`.

use xtwig_xml::TagId;

/// Path terminator byte.
pub const TERMINATOR: u8 = 0x01;
/// First byte value available for 1-byte designators.
const ONE_BYTE_BASE: u8 = 0x02;
/// Number of tag ids encodable in one byte.
const ONE_BYTE_TAGS: u32 = 0xFF - ONE_BYTE_BASE as u32; // 0x02..=0xFE -> 253
/// Escape byte introducing a 3-byte designator.
const ESCAPE: u8 = 0xFF;

/// Appends the designator for `tag` to `out`.
pub fn push_designator(out: &mut Vec<u8>, tag: TagId) {
    if tag.0 < ONE_BYTE_TAGS {
        out.push(ONE_BYTE_BASE + tag.0 as u8);
    } else {
        let rest = tag.0 - ONE_BYTE_TAGS;
        assert!(rest <= u32::from(u16::MAX), "tag dictionary too large for designators");
        out.push(ESCAPE);
        out.extend_from_slice(&(rest as u16).to_be_bytes());
    }
}

/// Appends the designators for `tags` in order (no terminator).
pub fn push_path(out: &mut Vec<u8>, tags: &[TagId]) {
    for &t in tags {
        push_designator(out, t);
    }
}

/// Appends the designators for `tags` in **reverse** order (no
/// terminator) — the `ReverseSchemaPath` of Fig. 4/5.
pub fn push_path_reversed(out: &mut Vec<u8>, tags: &[TagId]) {
    for &t in tags.iter().rev() {
        push_designator(out, t);
    }
}

/// Encodes `tags` (forward) with a terminator.
pub fn encode_path(tags: &[TagId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tags.len() + 1);
    push_path(&mut out, tags);
    out.push(TERMINATOR);
    out
}

/// Encodes `tags` reversed with a terminator.
pub fn encode_path_reversed(tags: &[TagId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tags.len() + 1);
    push_path_reversed(&mut out, tags);
    out.push(TERMINATOR);
    out
}

/// Decodes a designator sequence starting at `pos`, up to and including
/// its terminator. Returns `(tags, next_pos)`.
///
/// # Panics
/// Panics on malformed input (index keys are trusted).
pub fn decode_path(bytes: &[u8], pos: usize) -> (Vec<TagId>, usize) {
    let mut tags = Vec::new();
    let mut i = pos;
    loop {
        match bytes[i] {
            TERMINATOR => return (tags, i + 1),
            ESCAPE => {
                let rest = u16::from_be_bytes([bytes[i + 1], bytes[i + 2]]);
                tags.push(TagId(ONE_BYTE_TAGS + u32::from(rest)));
                i += 3;
            }
            b if b >= ONE_BYTE_BASE => {
                tags.push(TagId(u32::from(b - ONE_BYTE_BASE)));
                i += 1;
            }
            other => panic!("bad designator byte {other:#x} at {i}"),
        }
    }
}

/// Decodes a reversed designator sequence (returns tags in forward
/// root-to-leaf order).
pub fn decode_path_reversed(bytes: &[u8], pos: usize) -> (Vec<TagId>, usize) {
    let (mut tags, next) = decode_path(bytes, pos);
    tags.reverse();
    (tags, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> TagId {
        TagId(v)
    }

    #[test]
    fn single_byte_designators_roundtrip() {
        let tags = vec![t(0), t(1), t(100), t(252)];
        let enc = encode_path(&tags);
        assert_eq!(enc.len(), 5); // 4 designators + terminator
        let (dec, next) = decode_path(&enc, 0);
        assert_eq!(dec, tags);
        assert_eq!(next, enc.len());
    }

    #[test]
    fn multi_byte_designators_roundtrip() {
        let tags = vec![t(253), t(300), t(65_000), t(5)];
        let enc = encode_path(&tags);
        let (dec, next) = decode_path(&enc, 0);
        assert_eq!(dec, tags);
        assert_eq!(next, enc.len());
    }

    #[test]
    fn reversed_encoding_reverses() {
        let tags = vec![t(1), t(2), t(3)];
        let fwd = encode_path(&tags);
        let rev = encode_path_reversed(&tags);
        assert_ne!(fwd, rev);
        let (dec, _) = decode_path_reversed(&rev, 0);
        assert_eq!(dec, tags);
    }

    #[test]
    fn no_designator_contains_terminator_as_lead_byte() {
        for id in [0u32, 1, 252, 253, 254, 1000, 60_000] {
            let mut out = Vec::new();
            push_designator(&mut out, t(id));
            assert_ne!(out[0], TERMINATOR, "lead byte collides with terminator for {id}");
            assert_ne!(out[0], 0x00, "lead byte must be non-zero for {id}");
        }
    }

    #[test]
    fn code_is_prefix_free() {
        let ids = [0u32, 1, 5, 252, 253, 254, 300, 40_000];
        let codes: Vec<Vec<u8>> = ids
            .iter()
            .map(|&i| {
                let mut v = Vec::new();
                push_designator(&mut v, t(i));
                v
            })
            .collect();
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert!(!b.starts_with(a), "code {i} is a prefix of code {j}");
                }
            }
        }
    }

    #[test]
    fn anchored_probe_matches_only_exact_path() {
        // Stored: reverse(/book/title) = [T, B, term]; reverse of
        // /x/book/title = [T, B, X, term].
        let stored_exact = encode_path_reversed(&[t(1), t(2)]); // book=1,title=2
        let stored_deeper = encode_path_reversed(&[t(9), t(1), t(2)]);
        // Anchored /book/title probe includes the terminator:
        let mut probe = Vec::new();
        push_path_reversed(&mut probe, &[t(1), t(2)]);
        probe.push(TERMINATOR);
        assert!(stored_exact.starts_with(&probe));
        assert!(!stored_deeper.starts_with(&probe));
        // Recursive //book/title probe omits it and matches both:
        let mut probe2 = Vec::new();
        push_path_reversed(&mut probe2, &[t(1), t(2)]);
        assert!(stored_exact.starts_with(&probe2));
        assert!(stored_deeper.starts_with(&probe2));
    }

    #[test]
    fn recursive_probe_does_not_match_partial_tags() {
        // //title must not match a path ending in some OTHER tag whose
        // designator shares bytes. With 1-byte designators distinctness is
        // trivial; check the 3-byte regime.
        let title = t(300);
        let other = t(301);
        let stored = encode_path_reversed(&[t(1), other]);
        let mut probe = Vec::new();
        push_designator(&mut probe, title); // reversed single-tag probe
        assert!(!stored.starts_with(&probe));
    }

    #[test]
    fn empty_path_is_just_terminator() {
        let enc = encode_path(&[]);
        assert_eq!(enc, vec![TERMINATOR]);
        let (dec, next) = decode_path(&enc, 0);
        assert!(dec.is_empty());
        assert_eq!(next, 1);
    }
}
