//! Shard-parallel index construction support.
//!
//! The paper builds every index with a single `CREATE INDEX`-style pass;
//! at production scale the cold start dominates (native XML stores treat
//! bulk index construction as a first-class parallel phase). The model
//! here keeps the sequential builders' *output* while parallelizing the
//! dominant cost:
//!
//! 1. [`ShardPlan`] partitions the forest into contiguous pre-order
//!    ranges of near-equal node count ([`XmlForest::partition_nodes`]);
//!    a range may start mid-subtree because the ranged enumerators
//!    reseed their ancestor stack from the boundary node's root path,
//!    so row enumeration needs no coordination — and shards stay
//!    balanced even for single-document datasets like XMark/DBLP.
//! 2. [`map_shards`] runs one enumerate-and-sort job per range on a
//!    fixed worker pool and returns the per-shard results **in shard
//!    order**.
//! 3. Each builder merges its sorted shard runs with
//!    [`xtwig_btree::merge_sorted_runs`] and bulk-loads exactly the
//!    entry sequence the sequential sort would have produced — which is
//!    why the resulting pages are byte-identical (asserted by
//!    `QueryEngine::structure_digest` in the `parallel_build` suite).
//!
//! Only row enumeration and sorting run concurrently; final bulk loads
//! stay on the calling thread so buffer-pool page allocation order (and
//! therefore the page image) is deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xtwig_xml::{NodeRange, XmlForest};

/// How a parallel build partitions the forest and how many worker
/// threads execute the shard jobs.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    ranges: Vec<NodeRange>,
    workers: usize,
}

impl ShardPlan {
    /// Partitions `forest` into up to `shards` pre-order ranges of
    /// near-equal node count, with one worker per shard capped at the
    /// host's available parallelism.
    pub fn new(forest: &XmlForest, shards: usize) -> Self {
        let ranges = forest.partition_nodes(shards.max(1));
        let hw = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        let workers = ranges.len().clamp(1, hw.max(1));
        ShardPlan { ranges, workers }
    }

    /// The degenerate single-shard plan: one range covering the whole
    /// forest, executed inline. Sequential builders use this, which is
    /// what makes `build` and `build_sharded` share one code path.
    pub fn sequential(forest: &XmlForest) -> Self {
        ShardPlan { ranges: forest.full_range().into_iter().collect(), workers: 1 }
    }

    /// Overrides the worker count (tests pin it to exercise the pool
    /// independently of the host's core count).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The shard ranges, in document order.
    pub fn ranges(&self) -> &[NodeRange] {
        &self.ranges
    }

    /// Number of shards (≤ the requested count when the forest has too
    /// few documents to split further).
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// Worker threads the shard jobs run on.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

/// Runs `f` over every shard range on the plan's worker pool, returning
/// the results in shard order. With one worker (or at most one shard)
/// the jobs run inline on the calling thread — no spawn overhead, same
/// results. A panicking job propagates to the caller when the scope
/// joins.
pub fn map_shards<T, F>(plan: &ShardPlan, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(NodeRange) -> T + Sync,
{
    let ranges = plan.ranges();
    if plan.workers() <= 1 || ranges.len() <= 1 {
        return ranges.iter().map(|&r| f(r)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..plan.workers().min(ranges.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ranges.len() {
                    break;
                }
                let out = f(ranges[i]);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner().unwrap_or_else(|e| e.into_inner()).expect("every shard job completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::NodeId;

    fn forest_with_docs(sizes: &[usize]) -> XmlForest {
        let mut f = XmlForest::new();
        for &n in sizes {
            let mut b = f.builder();
            b.open("doc");
            for i in 0..n {
                b.leaf("item", &format!("v{i}"));
            }
            b.close();
            b.finish();
        }
        f
    }

    #[test]
    fn partition_covers_forest_without_gaps() {
        let f = forest_with_docs(&[10, 3, 3, 3, 20, 1]);
        for shards in 1..=8 {
            let ranges = f.partition_nodes(shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].first, NodeId(1));
            assert_eq!(ranges.last().unwrap().last, f.full_range().unwrap().last);
            for w in ranges.windows(2) {
                assert_eq!(w[1].first.0, w[0].last.0 + 1, "contiguous, no overlap");
            }
            // Balanced: ranges differ by at most one node.
            let lens: Vec<u64> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "{lens:?}");
        }
    }

    #[test]
    fn partition_of_empty_forest_is_empty() {
        let f = XmlForest::new();
        assert!(f.partition_nodes(4).is_empty());
        assert!(f.full_range().is_none());
    }

    #[test]
    fn single_document_splits_mid_subtree() {
        // The paper's datasets are one big document each; arbitrary
        // pre-order boundaries are what make sharding useful there.
        let f = forest_with_docs(&[25]);
        let ranges = f.partition_nodes(8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges[0].first, NodeId(1));
        assert_eq!(ranges.last().unwrap().last, f.full_range().unwrap().last);
    }

    #[test]
    fn map_shards_preserves_shard_order() {
        let f = forest_with_docs(&[4; 12]);
        let plan = ShardPlan::new(&f, 5).with_workers(3);
        assert!(plan.shard_count() >= 2);
        let firsts = map_shards(&plan, |r| r.first.0);
        let expected: Vec<u64> = plan.ranges().iter().map(|r| r.first.0).collect();
        assert_eq!(firsts, expected);
    }

    #[test]
    fn sequential_plan_is_one_inline_shard() {
        let f = forest_with_docs(&[4, 4]);
        let plan = ShardPlan::sequential(&f);
        assert_eq!(plan.shard_count(), 1);
        assert_eq!(plan.workers(), 1);
        let total: u64 = map_shards(&plan, |r| r.len()).iter().sum();
        assert_eq!(total, f.node_count() as u64 - 1);
    }
}
