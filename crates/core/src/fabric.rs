//! Simulated Index Fabric (paper §5.1.2, [Cooper et al.]).
//!
//! The Index Fabric indexes XML paths **and data values together**, but
//! only for full root-to-leaf paths, and returns only the leaf (or root)
//! id. Like the paper, we simulate the Patricia trie with a regular
//! B+-tree whose keys concatenate the forward schema path and the leaf
//! value; B+-tree interior prefix truncation plays the role of the
//! trie's key compression.
//!
//! Consequences measured in §5: fully-specified valued path queries are
//! one probe (Fig. 11's strong IF result), but prefix (non-leaf) paths,
//! `//` patterns, and branch-point retrieval all fall back to Edge-chain
//! evaluation (IF+Edge).

use crate::designator;
use crate::family::{
    value_key_prefix, FamilyPosition, IdListSublist, IndexedColumn, PathIndex, SchemaPathSubset,
};
use crate::parallel::{map_shards, ShardPlan};
use crate::paths::for_each_root_path_in;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtwig_btree::{bulk_build, merge_sorted_runs, BTree, BTreeOptions};
use xtwig_rel::codec::KeyBuf;
use xtwig_storage::BufferPool;
use xtwig_xml::{TagId, XmlForest};

/// The simulated Index Fabric.
pub struct IndexFabric {
    tree: BTree,
    lookups: AtomicU64,
}

impl IndexFabric {
    /// Builds the fabric (valued root-to-leaf paths only) from `forest`.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>) -> Self {
        Self::build_sharded(forest, pool, &ShardPlan::sequential(forest))
    }

    /// Shard-parallel [`Self::build`] (sorted per-shard runs merged into
    /// one bulk load; byte-identical to the sequential build).
    pub fn build_sharded(forest: &XmlForest, pool: Arc<BufferPool>, plan: &ShardPlan) -> Self {
        let runs = map_shards(plan, |range| {
            let mut entries = Vec::new();
            for_each_root_path_in(forest, range, |tags, ids, value| {
                let Some(v) = value else { return };
                let mut key = KeyBuf::new();
                let mut path = Vec::with_capacity(tags.len() + 1);
                designator::push_path(&mut path, tags);
                path.push(designator::TERMINATOR);
                key.push_raw(&path);
                key.push_str(value_key_prefix(v));
                key.push_u64(*ids.last().unwrap());
                entries.push((key.finish(), Vec::new()));
            });
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            entries
        });
        IndexFabric {
            tree: bulk_build(pool, BTreeOptions::default(), merge_sorted_runs(runs)),
            lookups: AtomicU64::new(0),
        }
    }

    /// Leaf ids of every instance of the exact root-anchored path `tags`
    /// whose leaf value equals `value` — one probe.
    pub fn leaf_instances(&self, tags: &[TagId], value: &str) -> Vec<u64> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut key = KeyBuf::new();
        let mut path = Vec::with_capacity(tags.len() + 1);
        designator::push_path(&mut path, tags);
        path.push(designator::TERMINATOR);
        key.push_raw(&path);
        key.push_str(value_key_prefix(value));
        self.tree
            .scan_prefix(key.as_bytes())
            .map(|(k, _)| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&k[k.len() - 8..]);
                u64::from_be_bytes(b)
            })
            .collect()
    }

    /// Index probes issued since the last call.
    pub fn take_lookups(&self) -> u64 {
        self.lookups.swap(0, Ordering::Relaxed)
    }

    /// Entry count.
    pub fn rows(&self) -> u64 {
        self.tree.len()
    }

    /// Physical tree shape for the optimizer's catalog (see
    /// [`crate::auto`]).
    pub fn cost_profile(&self) -> xtwig_opt::TreeProfile {
        crate::auto::tree_profile(&self.tree)
    }
}

impl IndexFabric {
    /// Writes the catalog metadata a reopen needs (see
    /// [`crate::persist`]).
    pub(crate) fn write_meta(&self, w: &mut crate::persist::ByteWriter) {
        crate::persist::write_tree_meta(w, &self.tree);
    }

    /// Reattaches a persisted Index Fabric over `pool`.
    pub(crate) fn open_meta(
        r: &mut crate::persist::ByteReader<'_>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, crate::persist::FormatError> {
        Ok(IndexFabric {
            tree: crate::persist::read_tree_meta(r, pool)?,
            lookups: AtomicU64::new(0),
        })
    }
}

impl PathIndex for IndexFabric {
    fn name(&self) -> &'static str {
        "IndexFabric"
    }

    fn family_position(&self) -> FamilyPosition {
        FamilyPosition {
            schema_paths: SchemaPathSubset::RootToLeaf,
            idlist: IdListSublist::FirstOrLast,
            indexed: vec![IndexedColumn::SchemaPath, IndexedColumn::LeafValue],
        }
    }

    fn space_bytes(&self) -> u64 {
        self.tree.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn tags(f: &XmlForest, names: &[&str]) -> Vec<TagId> {
        names.iter().map(|n| f.dict().lookup(n).unwrap()).collect()
    }

    #[test]
    fn valued_root_to_leaf_is_one_probe() {
        let f = fig1_book_document();
        let fab = IndexFabric::build(&f, Arc::new(BufferPool::in_memory(4096)));
        let path = tags(&f, &["book", "allauthors", "author", "fn"]);
        let mut janes = fab.leaf_instances(&path, "jane");
        janes.sort_unstable();
        assert_eq!(janes, vec![7, 42]);
        assert_eq!(fab.take_lookups(), 1);
        assert!(fab.leaf_instances(&path, "zoe").is_empty());
    }

    #[test]
    fn only_valued_leaves_are_stored() {
        let f = fig1_book_document();
        let fab = IndexFabric::build(&f, Arc::new(BufferPool::in_memory(4096)));
        let valued = f.iter_nodes().filter(|&n| f.value(n).is_some()).count() as u64;
        assert_eq!(fab.rows(), valued);
    }

    #[test]
    fn value_must_match_exactly() {
        let f = fig1_book_document();
        let fab = IndexFabric::build(&f, Arc::new(BufferPool::in_memory(4096)));
        let path = tags(&f, &["book", "title"]);
        assert_eq!(fab.leaf_instances(&path, "XML"), vec![2]);
        assert!(fab.leaf_instances(&path, "XM").is_empty());
        assert!(fab.leaf_instances(&path, "XMLX").is_empty());
    }

    #[test]
    fn family_position_is_fig3_row() {
        let f = fig1_book_document();
        let fab = IndexFabric::build(&f, Arc::new(BufferPool::in_memory(4096)));
        let pos = fab.family_position();
        assert_eq!(pos.schema_paths, SchemaPathSubset::RootToLeaf);
        assert_eq!(pos.idlist, IdListSublist::FirstOrLast);
        assert_eq!(pos.indexed, vec![IndexedColumn::SchemaPath, IndexedColumn::LeafValue]);
    }
}
