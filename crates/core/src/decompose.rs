//! Covering a query twig with PCsubpath patterns (paper §2.2–2.3).
//!
//! "Any query twig pattern can always be covered by a set of PCsubpath
//! patterns": cut the twig at every ancestor-descendant edge — each
//! maximal parent-child-connected piece is a **segment** — then take the
//! root-to-leaf paths of each segment (plus an extra root-to-node path
//! for every valued interior node, so each value condition sits at the
//! leaf of some PCsubpath).
//!
//! The segments also record how they connect (which twig node the `//`
//! edge descends from), which is everything the engine needs to stitch
//! subpath matches back together with joins on IdList-extracted ids.

use crate::family::PcSubpathQuery;
use std::fmt;
use xtwig_xml::{Axis, TagDict, TwigPattern};

/// One PCsubpath of the cover.
#[derive(Debug, Clone)]
pub struct SubpathSpec {
    /// The resolved pattern.
    pub q: PcSubpathQuery,
    /// Twig node index bound by each step (`nodes.len() == q.len()`).
    pub nodes: Vec<usize>,
    /// Owning segment.
    pub segment: usize,
}

/// A maximal parent-child-connected piece of the twig.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Twig node at the segment root.
    pub root: usize,
    /// `(upper twig node, its segment)` for the `//` edge above this
    /// segment; `None` for the root segment.
    pub parent: Option<(usize, usize)>,
    /// Indices into [`CompiledTwig::subpaths`].
    pub subpath_ids: Vec<usize>,
}

/// A twig compiled into its PCsubpath cover.
#[derive(Debug, Clone)]
pub struct CompiledTwig {
    /// The source twig.
    pub twig: TwigPattern,
    /// The covering PCsubpaths.
    pub subpaths: Vec<SubpathSpec>,
    /// The segments.
    pub segments: Vec<Segment>,
}

/// A twig references a tag that does not occur in the data; its result
/// is necessarily empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTag(pub String);

impl fmt::Display for UnknownTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag {:?} does not occur in the data", self.0)
    }
}

impl std::error::Error for UnknownTag {}

/// Decomposes `twig`, resolving tags against `dict`.
pub fn decompose(twig: &TwigPattern, dict: &TagDict) -> Result<CompiledTwig, UnknownTag> {
    let n = twig.len();
    // Assign segments: cut at Descendant edges.
    let mut segment_of = vec![usize::MAX; n];
    let mut segments: Vec<Segment> = Vec::new();
    segments.push(Segment { root: 0, parent: None, subpath_ids: Vec::new() });
    segment_of[0] = 0;
    for qi in twig.preorder() {
        let seg = segment_of[qi];
        for &(axis, child) in &twig.nodes[qi].children {
            match axis {
                Axis::Child => segment_of[child] = seg,
                Axis::Descendant => {
                    segment_of[child] = segments.len();
                    segments.push(Segment {
                        root: child,
                        parent: Some((qi, seg)),
                        subpath_ids: Vec::new(),
                    });
                }
            }
        }
    }

    // Enumerate each segment's root-to-leaf paths, plus root-to-node
    // paths for valued interior nodes.
    let mut subpaths: Vec<SubpathSpec> = Vec::new();
    for (seg_idx, seg) in segments.iter().enumerate() {
        let anchored = seg.parent.is_none() && twig.root_axis == Axis::Child;
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(seg.root, vec![seg.root])];
        while let Some((qi, path)) = stack.pop() {
            let pc_children: Vec<usize> = twig.nodes[qi]
                .children
                .iter()
                .filter(|&&(axis, _)| axis == Axis::Child)
                .map(|&(_, c)| c)
                .collect();
            let is_leaf = pc_children.is_empty();
            let valued = twig.nodes[qi].value.is_some();
            if is_leaf || valued {
                subpaths.push(make_spec(twig, dict, &path, anchored, seg_idx, valued)?);
            }
            for c in pc_children.into_iter().rev() {
                let mut p = path.clone();
                p.push(c);
                stack.push((c, p));
            }
        }
    }
    // Tie subpaths back to segments.
    for (i, sp) in subpaths.iter().enumerate() {
        segments[sp.segment].subpath_ids.push(i);
    }
    Ok(CompiledTwig { twig: twig.clone(), subpaths, segments })
}

fn make_spec(
    twig: &TwigPattern,
    dict: &TagDict,
    path: &[usize],
    anchored: bool,
    segment: usize,
    use_value: bool,
) -> Result<SubpathSpec, UnknownTag> {
    let tags = path
        .iter()
        .map(|&qi| {
            dict.lookup(&twig.nodes[qi].tag).ok_or_else(|| UnknownTag(twig.nodes[qi].tag.clone()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let value = if use_value { twig.nodes[*path.last().unwrap()].value.clone() } else { None };
    Ok(SubpathSpec { q: PcSubpathQuery { tags, anchored, value }, nodes: path.to_vec(), segment })
}

impl CompiledTwig {
    /// The subpath binding the output node (engineered to always exist:
    /// the output node lies on some root-to-leaf path of its segment).
    pub fn output_subpath(&self) -> Option<usize> {
        self.subpaths.iter().position(|sp| sp.nodes.contains(&self.twig.output))
    }

    /// Deepest twig node shared by two subpaths (`None` when disjoint).
    pub fn deepest_shared(&self, a: usize, b: usize) -> Option<usize> {
        let bn = &self.subpaths[b].nodes;
        self.subpaths[a].nodes.iter().rev().find(|n| bn.contains(n)).copied()
    }

    /// Rebinds this compiled cover onto `twig`, which must have exactly
    /// the same shape — node indices, axes, tags, and value *presence*
    /// (the contract a shape-keyed plan cache enforces). Only the
    /// literal predicate values may differ; they are re-read from the
    /// new twig, so one cached decomposition serves every query of the
    /// shape (a parameterized plan, in relational terms).
    pub fn rebind(&self, twig: &TwigPattern) -> CompiledTwig {
        let mut out = self.clone();
        out.twig = twig.clone();
        for sp in &mut out.subpaths {
            if sp.q.value.is_some() {
                sp.q.value = twig.nodes[*sp.nodes.last().unwrap()].value.clone();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_xpath;

    fn dict_for(twig: &TwigPattern) -> TagDict {
        let mut dict = TagDict::new();
        for node in &twig.nodes {
            dict.intern(&node.tag);
        }
        dict
    }

    fn names(_twig: &TwigPattern, dict: &TagDict, sp: &SubpathSpec) -> Vec<String> {
        sp.q.tags.iter().map(|&t| dict.name(t).to_owned()).collect()
    }

    #[test]
    fn paper_intro_twig_decomposes_into_three_subpaths() {
        // §2.2: /book[title='XML']//author[fn='jane'][ln='doe'] consists
        // of /book/title, //author/fn, //author/ln (each a PCsubpath).
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        assert_eq!(c.segments.len(), 2);
        assert_eq!(c.subpaths.len(), 3);
        let sp_names: Vec<(Vec<String>, bool, Option<String>)> = c
            .subpaths
            .iter()
            .map(|sp| (names(&twig, &dict, sp), sp.q.anchored, sp.q.value.clone()))
            .collect();
        assert!(sp_names.contains(&(
            vec!["book".into(), "title".into()],
            true,
            Some("XML".into())
        )));
        assert!(sp_names.contains(&(
            vec!["author".into(), "fn".into()],
            false,
            Some("jane".into())
        )));
        assert!(sp_names.contains(&(
            vec!["author".into(), "ln".into()],
            false,
            Some("doe".into())
        )));
        // The lower segment hangs off the book node (twig node 0).
        let lower = &c.segments[1];
        assert_eq!(lower.parent, Some((0, 0)));
        assert_eq!(twig.nodes[lower.root].tag, "author");
    }

    #[test]
    fn single_path_is_one_subpath() {
        let twig = parse_xpath("/site/regions/namerica/item/quantity[. = '5']").unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        assert_eq!(c.segments.len(), 1);
        assert_eq!(c.subpaths.len(), 1);
        assert!(c.subpaths[0].q.anchored);
        assert_eq!(c.subpaths[0].q.value.as_deref(), Some("5"));
        assert_eq!(c.subpaths[0].nodes, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.output_subpath(), Some(0));
    }

    #[test]
    fn pc_branches_share_a_segment() {
        let twig = parse_xpath(
            "/site[people/person/profile/@income = 9876.00]\
             /open_auctions/open_auction[@increase = 3.00]",
        )
        .unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        assert_eq!(c.segments.len(), 1, "no // edges -> one segment");
        assert_eq!(c.subpaths.len(), 2);
        // Both subpaths share the site node (twig node 0).
        assert_eq!(c.deepest_shared(0, 1), Some(0));
    }

    #[test]
    fn descendant_edge_splits_segments() {
        let twig = parse_xpath("/site//item[quantity = 2]/mailbox/mail/to").unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        assert_eq!(c.segments.len(), 2);
        let lower = &c.segments[1];
        assert_eq!(twig.nodes[lower.root].tag, "item");
        // Lower segment has two subpaths: item/quantity=2, item/mailbox/mail/to.
        assert_eq!(lower.subpath_ids.len(), 2);
        // Upper segment: just /site.
        assert_eq!(c.segments[0].subpath_ids.len(), 1);
        let upper = &c.subpaths[c.segments[0].subpath_ids[0]];
        assert_eq!(upper.q.tags.len(), 1);
        assert!(upper.q.anchored);
    }

    #[test]
    fn interior_value_gets_its_own_subpath() {
        // /a/b[. = 'v']/c — value on an interior node b.
        let twig = parse_xpath("/a/b[. = 'v']/c").unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        assert_eq!(c.subpaths.len(), 2);
        let valued: Vec<_> = c.subpaths.iter().filter(|sp| sp.q.value.is_some()).collect();
        assert_eq!(valued.len(), 1);
        assert_eq!(valued[0].nodes, vec![0, 1]);
        let structural: Vec<_> = c.subpaths.iter().filter(|sp| sp.q.value.is_none()).collect();
        assert_eq!(structural[0].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn leading_descendant_root_segment_is_unanchored() {
        let twig = parse_xpath("//author/fn").unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        assert_eq!(c.segments.len(), 1);
        assert!(!c.subpaths[0].q.anchored);
    }

    #[test]
    fn unknown_tag_is_reported() {
        let twig = parse_xpath("/site/never_seen_tag").unwrap();
        let dict = {
            let mut d = TagDict::new();
            d.intern("site");
            d
        };
        let err = decompose(&twig, &dict).unwrap_err();
        assert_eq!(err, UnknownTag("never_seen_tag".into()));
    }

    #[test]
    fn output_subpath_found_for_branching_queries() {
        let twig =
            parse_xpath("/site/open_auctions/open_auction[annotation/author/@person = 'p1']/time")
                .unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        let out_sp = c.output_subpath().unwrap();
        assert!(c.subpaths[out_sp].nodes.contains(&twig.output));
        assert_eq!(twig.nodes[twig.output].tag, "time");
    }

    #[test]
    fn nested_descendants_chain_segments() {
        let twig = parse_xpath("/a//b//c[d = 'x']").unwrap();
        let dict = dict_for(&twig);
        let c = decompose(&twig, &dict).unwrap();
        assert_eq!(c.segments.len(), 3);
        assert_eq!(c.segments[1].parent.map(|p| p.1), Some(0));
        assert_eq!(c.segments[2].parent.map(|p| p.1), Some(1));
    }
}
