//! ROOTPATHS and DATAPATHS: relational twig-pattern indexing for XML.
//!
//! This crate is the primary contribution of Chen, Gehrke, Korn, Koudas,
//! Shanmugasundaram and Srivastava, *"Index Structures for Matching XML
//! Twigs Using Relational Query Processors"* (ICDE 2005), rebuilt as a
//! Rust library over the substrates in `xtwig-storage`/`xtwig-btree`/
//! `xtwig-rel`:
//!
//! * [`paths`] — the 4-ary relational representation of XML data paths
//!   `(HeadId, SchemaPath, LeafValue, IdList)` (paper Fig. 2), enumerated
//!   from an [`xtwig_xml::XmlForest`].
//! * [`family`] — the unified framework: every index is a point in the
//!   (SchemaPath subset, IdList sublist, indexed columns) space
//!   (paper Fig. 3), plus the `FreeIndex`/`BoundIndex` problem traits
//!   (paper §2.3).
//! * [`rootpaths`] / [`datapaths`] — the two novel indexes (paper §3.2,
//!   §3.3).
//! * [`edge`], [`dataguide`], [`fabric`], [`asr`], [`joinindex`] — the
//!   comparison systems of §5: Edge-table with Lore-style value/link
//!   indexes, simulated DataGuide, simulated Index Fabric, Access Support
//!   Relations, and Join Indices.
//! * [`compress`] — the §4 space optimizations: differential IdList
//!   encoding, SchemaPath dictionary compression, HeadId pruning.
//! * [`xpath`] — the XPath-subset parser producing query twigs.
//! * [`decompose`] — covering a twig with PCsubpaths (paper §2.2).
//! * [`plan`] / [`engine`] — plan selection (merge vs. index-nested-loop)
//!   and execution for all seven strategies.
//! * [`stitch`] — the stack-based structural join of the containment-join
//!   literature the paper cites in §6, as an alternative way to stitch
//!   subpath matches across `//` edges.
//! * [`persist`] — index durability: [`QueryEngine::persist`] writes
//!   every built structure into a single `.xtwig` file, and
//!   [`QueryEngine::open`] reattaches it with zero rebuild work,
//!   digest-verified against the stored catalog.
//! * [`fork`] — copy-on-write engine snapshots: [`QueryEngine::fork`]
//!   clones an engine without copying index pages, so maintenance on
//!   the fork is invisible to readers of the original (the MVCC
//!   primitive behind `xtwig-service`'s snapshot-isolated updates).
//! * [`auto`] — cost-based strategy selection: measures the built
//!   structures into an `xtwig-opt` catalog, ranks every strategy per
//!   query, resolves [`Strategy::Auto`], and backs `xtwig explain`.

pub mod asr;
pub mod auto;
pub mod compress;
pub mod dataguide;
pub mod datapaths;
pub mod decompose;
pub mod designator;
pub mod edge;
pub mod engine;
pub mod fabric;
pub mod family;
pub mod fork;
pub mod joinindex;
pub mod parallel;
pub mod paths;
pub mod persist;
pub mod plan;
pub mod rootpaths;
pub mod stitch;
pub mod xpath;

pub use auto::Explanation;
pub use engine::{
    twig_shape, ParseStrategyError, ProbeMemo, ProbeMemoStats, QueryAnswer, QueryEngine,
    QueryMetrics, Strategy,
};
// Tracing and feedback types, re-exported so engine callers need not
// depend on `xtwig-obs`/`xtwig-opt` directly.
pub use family::{BoundIndex, FamilyPosition, FreeIndex, PathIndex, PathMatch, PcSubpathQuery};
pub use fork::ForkError;
pub use parallel::ShardPlan;
pub use persist::{OpenError, OpenReport, PersistError, PersistReport};
pub use xpath::parse_xpath;
pub use xtwig_obs::{Span, SpanCounters, Trace};
pub use xtwig_opt::{AdviseReport, CalibrationLog, CalibrationSample};
