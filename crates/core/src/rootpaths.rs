//! The ROOTPATHS index (paper §3.2).
//!
//! A B+-tree on `LeafValue · ReverseSchemaPath` over all *prefixes of
//! root-to-leaf paths*, returning the complete IdList. Differences from
//! the Index Fabric it generalizes (paper §3.2): prefix paths are stored
//! too (queries need not reach a leaf), and the full IdList is returned
//! (branch-point ids come out of the lookup itself).
//!
//! Key layout (order-preserving):
//!
//! ```text
//! [ LeafValue: null | escaped string prefix ]
//! [ ReverseSchemaPath designators ]
//! [ 0x01 terminator ]
//! [ uniquifier: last node id, 9 bytes ]
//! ```
//!
//! The terminator is what separates the two probe shapes: an anchored
//! pattern (`/a/b`) includes it (exact path match), a `//`-headed pattern
//! omits it (pure prefix probe = suffix match on the forward path).
//! Entry payload: the delta-encoded IdList (paper §4.1).

use crate::designator;
use crate::family::{
    value_key_prefix, FamilyPosition, FreeIndex, IdListSublist, IndexedColumn, PathIndex,
    PathMatch, PcSubpathQuery, SchemaPathSubset,
};
use crate::parallel::{map_shards, ShardPlan};
use crate::paths::for_each_root_path_in;
use crate::persist;
use std::sync::Arc;
use xtwig_btree::{bulk_build, merge_sorted_runs, BTree, BTreeOptions};
use xtwig_rel::codec::{self, IdListCodec, KeyBuf};
use xtwig_storage::BufferPool;
use xtwig_xml::{TagId, XmlForest};

/// Which IdList sublist to store (paper §4.1's lossy pruning).
///
/// "With some knowledge about the query workload, it is also possible to
/// prune the IdLists … This compression of IdLists results in loss in
/// functionality": a `LastOnly` index answers filter-style path queries
/// (the Index Fabric's query class) but cannot supply branch-point ids,
/// so it cannot drive ad hoc twig joins. The query engine therefore only
/// accepts `Full` indexes; `LastOnly` is for the §5.2.5 space study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IdListKeep {
    /// Store the complete IdList (the paper's default).
    #[default]
    Full,
    /// Store only the final node id (extreme workload pruning).
    LastOnly,
}

/// Build options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RootPathsOptions {
    /// IdList storage codec (delta by default — §4.1 lossless).
    pub idlist: IdListCodec,
    /// IdList sublist to keep (§4.1 lossy pruning).
    pub keep: IdListKeep,
    /// B+-tree options (prefix truncation, fill factor).
    pub btree: BTreeOptions,
}

/// The ROOTPATHS index.
pub struct RootPaths {
    tree: BTree,
    idlist: IdListCodec,
    keep: IdListKeep,
    rows: u64,
}

/// Encodes the `LeafValue` key component.
pub(crate) fn push_value_part(key: &mut KeyBuf, value: Option<&str>) {
    match value {
        None => {
            key.push_null();
        }
        Some(v) => {
            key.push_str(value_key_prefix(v));
        }
    }
}

/// Parses past the `LeafValue` component, returning `(value, next_pos)`.
pub(crate) fn skip_value_part(bytes: &[u8], pos: usize) -> (Option<String>, usize) {
    if let Some(next) = codec::dec_null(bytes, pos) {
        (None, next)
    } else {
        let (s, next) = codec::dec_str(bytes, pos);
        (Some(s), next)
    }
}

impl RootPaths {
    /// Builds the index from `forest` into `pool`.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>, options: RootPathsOptions) -> Self {
        Self::build_sharded(forest, pool, options, &ShardPlan::sequential(forest))
    }

    /// Builds the index shard-parallel: each shard enumerates and sorts
    /// its own entry run on the plan's worker pool, and the merged runs
    /// are bulk-loaded in one pass — the same strictly increasing entry
    /// sequence (and therefore the same page image) as [`Self::build`].
    pub fn build_sharded(
        forest: &XmlForest,
        pool: Arc<BufferPool>,
        options: RootPathsOptions,
        plan: &ShardPlan,
    ) -> Self {
        let runs = map_shards(plan, |range| {
            let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            for_each_root_path_in(forest, range, |tags, ids, value| {
                let mut key = KeyBuf::new();
                push_value_part(&mut key, value);
                let mut path = Vec::with_capacity(tags.len() + 1);
                designator::push_path_reversed(&mut path, tags);
                path.push(designator::TERMINATOR);
                key.push_raw(&path);
                key.push_u64(*ids.last().unwrap());
                let stored: &[u64] = match options.keep {
                    IdListKeep::Full => ids,
                    IdListKeep::LastOnly => &ids[ids.len() - 1..],
                };
                entries.push((key.finish(), codec::encode_idlist(options.idlist, stored)));
            });
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            entries
        });
        let rows = runs.iter().map(|r| r.len() as u64).sum();
        let tree = bulk_build(pool, options.btree, merge_sorted_runs(runs));
        RootPaths { tree, idlist: options.idlist, keep: options.keep, rows }
    }

    /// Number of stored rows (structural + valued).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The underlying tree (benchmarks read its shape).
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    fn probe_prefix(&self, q: &PcSubpathQuery) -> Vec<u8> {
        let mut key = KeyBuf::new();
        push_value_part(&mut key, q.value.as_deref());
        let mut path = Vec::with_capacity(q.tags.len() + 1);
        designator::push_path_reversed(&mut path, &q.tags);
        if q.anchored {
            path.push(designator::TERMINATOR);
        }
        key.push_raw(&path);
        key.finish()
    }

    fn decode_entry(&self, key: &[u8], payload: &[u8]) -> PathMatch {
        let (_value, pos) = skip_value_part(key, 0);
        let (tags, _next) = designator::decode_path_reversed(key, pos);
        let ids = codec::decode_idlist(self.idlist, payload);
        debug_assert!(self.keep == IdListKeep::LastOnly || tags.len() == ids.len());
        PathMatch { head: 0, tags, ids }
    }

    /// The stored IdList sublist.
    pub fn idlist_keep(&self) -> IdListKeep {
        self.keep
    }

    /// Inserts the index entries for a new node whose root path is
    /// `tags`/`ids` with optional leaf `value` (paper §7: updating
    /// ROOTPATHS requires one entry per new prefix — the caller invokes
    /// this once per inserted node).
    pub fn insert_path(&mut self, tags: &[TagId], ids: &[u64], value: Option<&str>) {
        let payload = codec::encode_idlist(self.idlist, ids);
        let mut key = KeyBuf::new();
        push_value_part(&mut key, None);
        let mut path = Vec::with_capacity(tags.len() + 1);
        designator::push_path_reversed(&mut path, tags);
        path.push(designator::TERMINATOR);
        key.push_raw(&path);
        key.push_u64(*ids.last().unwrap());
        self.tree.insert(&key.finish(), &payload);
        self.rows += 1;
        if let Some(v) = value {
            let mut key = KeyBuf::new();
            push_value_part(&mut key, Some(v));
            key.push_raw(&path);
            key.push_u64(*ids.last().unwrap());
            self.tree.insert(&key.finish(), &payload);
            self.rows += 1;
        }
    }

    /// Removes the entries for the node at the end of `tags`/`ids`
    /// (paper §7: ROOTPATHS is self-locating — the path plus value find
    /// the entries to delete without joins).
    pub fn delete_path(&mut self, tags: &[TagId], ids: &[u64], value: Option<&str>) -> bool {
        let mut path = Vec::with_capacity(tags.len() + 1);
        designator::push_path_reversed(&mut path, tags);
        path.push(designator::TERMINATOR);
        let mut key = KeyBuf::new();
        push_value_part(&mut key, None);
        key.push_raw(&path);
        key.push_u64(*ids.last().unwrap());
        let mut removed = self.tree.delete(&key.finish()).is_some();
        if removed {
            self.rows -= 1;
        }
        if let Some(v) = value {
            let mut key = KeyBuf::new();
            push_value_part(&mut key, Some(v));
            key.push_raw(&path);
            key.push_u64(*ids.last().unwrap());
            if self.tree.delete(&key.finish()).is_some() {
                self.rows -= 1;
                removed = true;
            }
        }
        removed
    }
}

impl RootPaths {
    /// Writes the catalog metadata a reopen needs (see
    /// [`crate::persist`]): codecs, row count, and the tree's shape.
    pub(crate) fn write_meta(&self, w: &mut persist::ByteWriter) {
        persist::write_codec(w, self.idlist);
        w.push_u8(match self.keep {
            IdListKeep::Full => 0,
            IdListKeep::LastOnly => 1,
        });
        w.push_u64(self.rows);
        persist::write_tree_meta(w, &self.tree);
    }

    /// Reattaches a persisted ROOTPATHS index over `pool`.
    pub(crate) fn open_meta(
        r: &mut persist::ByteReader<'_>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, persist::FormatError> {
        let idlist = persist::read_codec(r)?;
        let keep = match r.u8()? {
            0 => IdListKeep::Full,
            1 => IdListKeep::LastOnly,
            b => return persist::format_err(format!("unknown IdList sublist {b}")),
        };
        let rows = r.u64()?;
        let tree = persist::read_tree_meta(r, pool)?;
        Ok(RootPaths { tree, idlist, keep, rows })
    }
}

impl PathIndex for RootPaths {
    fn name(&self) -> &'static str {
        "ROOTPATHS"
    }

    fn family_position(&self) -> FamilyPosition {
        FamilyPosition {
            schema_paths: SchemaPathSubset::RootToLeafPrefixes,
            idlist: IdListSublist::Full,
            indexed: vec![IndexedColumn::LeafValue, IndexedColumn::ReverseSchemaPath],
        }
    }

    fn space_bytes(&self) -> u64 {
        self.tree.space_bytes()
    }
}

impl FreeIndex for RootPaths {
    fn lookup_free(&self, q: &PcSubpathQuery) -> Vec<PathMatch> {
        let prefix = self.probe_prefix(q);
        self.tree.scan_prefix(&prefix).map(|(k, v)| self.decode_entry(&k, &v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn build(forest: &XmlForest) -> RootPaths {
        RootPaths::build(forest, Arc::new(BufferPool::in_memory(4096)), RootPathsOptions::default())
    }

    fn q(
        forest: &XmlForest,
        steps: &[&str],
        anchored: bool,
        value: Option<&str>,
    ) -> PcSubpathQuery {
        PcSubpathQuery::resolve(forest.dict(), steps, anchored, value).expect("tags exist")
    }

    fn last_ids(ms: &[PathMatch]) -> Vec<u64> {
        let mut v: Vec<u64> = ms.iter().map(|m| m.last_id()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_lookup_answers_valued_suffix_pattern() {
        // Paper §3.2: "//author[fn='jane']" is one probe on ('jane', FA*).
        let f = fig1_book_document();
        let rp = build(&f);
        let ms = rp.lookup_free(&q(&f, &["author", "fn"], false, Some("jane")));
        assert_eq!(ms.len(), 2);
        assert_eq!(last_ids(&ms), vec![7, 42]);
        // Full IdLists give the author (penultimate) and book (first) ids
        // without any join:
        for m in &ms {
            assert_eq!(m.ids[0], 1);
            assert!(m.id_from_end(1) == 6 || m.id_from_end(1) == 41);
        }
    }

    #[test]
    fn structural_suffix_pattern() {
        let f = fig1_book_document();
        let rp = build(&f);
        // "//author/fn" without a value: probe (null, FA*).
        let ms = rp.lookup_free(&q(&f, &["author", "fn"], false, None));
        assert_eq!(last_ids(&ms), vec![7, 22, 42]);
    }

    #[test]
    fn anchored_pattern_matches_exact_path_only() {
        let f = fig1_book_document();
        let rp = build(&f);
        // /book/title matches only node 2; //title also finds the chapter
        // title 48.
        let anchored = rp.lookup_free(&q(&f, &["book", "title"], true, None));
        assert_eq!(last_ids(&anchored), vec![2]);
        let recursive = rp.lookup_free(&q(&f, &["title"], false, None));
        assert_eq!(last_ids(&recursive), vec![2, 48]);
    }

    #[test]
    fn anchored_valued_pattern() {
        let f = fig1_book_document();
        let rp = build(&f);
        let ms = rp.lookup_free(&q(&f, &["book", "title"], true, Some("XML")));
        assert_eq!(last_ids(&ms), vec![2]);
        let none = rp.lookup_free(&q(&f, &["book", "title"], true, Some("JSON")));
        assert!(none.is_empty());
    }

    #[test]
    fn prefix_paths_are_stored() {
        // §3.2: "/book" must be answerable (Index Fabric cannot).
        let f = fig1_book_document();
        let rp = build(&f);
        let ms = rp.lookup_free(&q(&f, &["book"], true, None));
        assert_eq!(last_ids(&ms), vec![1]);
    }

    #[test]
    fn idlists_enumerate_full_paths() {
        let f = fig1_book_document();
        let rp = build(&f);
        let ms = rp.lookup_free(&q(&f, &["book", "allauthors", "author", "ln"], true, Some("doe")));
        let mut idlists: Vec<Vec<u64>> = ms.iter().map(|m| m.ids.clone()).collect();
        idlists.sort();
        assert_eq!(idlists, vec![vec![1, 5, 21, 25], vec![1, 5, 41, 45]]);
    }

    #[test]
    fn row_count_matches_enumeration() {
        let f = fig1_book_document();
        let rp = build(&f);
        let nodes = (f.node_count() - 1) as u64;
        let valued = f.iter_nodes().filter(|&n| f.value(n).is_some()).count() as u64;
        assert_eq!(rp.rows(), nodes + valued);
        assert_eq!(rp.tree().len(), rp.rows());
    }

    #[test]
    fn family_position_is_fig3_row() {
        let f = fig1_book_document();
        let rp = build(&f);
        let pos = rp.family_position();
        assert_eq!(pos.schema_paths, SchemaPathSubset::RootToLeafPrefixes);
        assert_eq!(pos.idlist, IdListSublist::Full);
        assert_eq!(pos.indexed, vec![IndexedColumn::LeafValue, IndexedColumn::ReverseSchemaPath]);
        assert!(rp.space_bytes() > 0);
    }

    #[test]
    fn update_roundtrip() {
        // §7's example: insert an author with a name under the book.
        let mut f = fig1_book_document();
        let rp_rows_before = build(&f).rows();
        // Simulate appending nodes: reuse tag ids, fabricate fresh node ids.
        let dict_ids: Vec<TagId> =
            ["book", "allauthors", "author", "fn"].iter().map(|t| f.dict_mut().intern(t)).collect();
        let mut rp = build(&f);
        rp.insert_path(&dict_ids[..3], &[1, 5, 1000], None);
        rp.insert_path(&dict_ids, &[1, 5, 1000, 1001], Some("zoe"));
        assert_eq!(rp.rows(), rp_rows_before + 3);
        let ms = rp.lookup_free(&q(&f, &["author", "fn"], false, Some("zoe")));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].ids, vec![1, 5, 1000, 1001]);
        // Self-locating delete (no joins needed).
        assert!(rp.delete_path(&dict_ids, &[1, 5, 1000, 1001], Some("zoe")));
        assert!(rp.lookup_free(&q(&f, &["author", "fn"], false, Some("zoe"))).is_empty());
    }

    #[test]
    fn last_only_pruning_trades_space_for_branch_ids() {
        // §4.1 lossy pruning: keep only the final id. Filter-style
        // lookups still work; branch-point extraction is gone.
        let f = fig1_book_document();
        let full = build(&f);
        let pruned = RootPaths::build(
            &f,
            Arc::new(BufferPool::in_memory(4096)),
            RootPathsOptions { keep: IdListKeep::LastOnly, ..Default::default() },
        );
        assert!(pruned.space_bytes() <= full.space_bytes());
        let q = q(&f, &["author", "fn"], false, Some("jane"));
        let full_ms = full.lookup_free(&q);
        let pruned_ms = pruned.lookup_free(&q);
        assert_eq!(last_ids(&full_ms), last_ids(&pruned_ms));
        assert!(pruned_ms.iter().all(|m| m.ids.len() == 1), "only the leaf id remains");
        assert!(full_ms.iter().all(|m| m.ids.len() == 4), "full index keeps the chain");
    }

    #[test]
    fn unknown_value_returns_empty_fast() {
        let f = fig1_book_document();
        let rp = build(&f);
        assert!(rp.lookup_free(&q(&f, &["author", "fn"], false, Some("zzz"))).is_empty());
    }
}
