//! XPath-subset parser producing query twig patterns.
//!
//! Covers the fragment the paper evaluates (Figs. 7–8): absolute paths
//! with `/` and `//` axes, attribute steps (`@name`), and nested
//! predicate paths with string-equality value conditions:
//!
//! ```text
//! /site/regions/namerica/item/quantity[. = '5']
//! /site[people/person/profile/@income = '9876.00']
//!      /open_auctions/open_auction[@increase = '75.00']
//! /site//item[incategory/category = 'category440']/mailbox/mail/date
//! ```
//!
//! Literals may be single- or double-quoted, or bare tokens (numbers,
//! identifiers). Only equality on string values is supported (paper
//! §2.1).

use std::fmt;
use xtwig_xml::{Axis, TwigPattern};

/// Parse failure with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

/// Parses an absolute XPath expression into a twig pattern.
pub fn parse_xpath(input: &str) -> Result<TwigPattern, XPathError> {
    let mut p = Parser { bytes: input.trim().as_bytes(), pos: 0 };
    let root_axis = p.parse_axis()?.ok_or_else(|| p.err("expected '/' or '//'".into()))?;
    let (name, _) = p.parse_step_name()?;
    let mut twig = TwigPattern::single(root_axis, &name, None);
    p.parse_predicates(&mut twig, 0)?;
    let mut cur = 0usize;
    while let Some(axis) = p.parse_axis()? {
        let (name, _) = p.parse_step_name()?;
        cur = twig.add_child(cur, axis, &name, None);
        p.parse_predicates(&mut twig, cur)?;
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(
            p.err(format!("trailing input: {:?}", String::from_utf8_lossy(&p.bytes[p.pos..])))
        );
    }
    twig.output = cur;
    Ok(twig)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: String) -> XPathError {
        XPathError { offset: self.pos, message }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Parses `/` or `//`; returns `None` when the next token is not an
    /// axis (end of a path).
    fn parse_axis(&mut self) -> Result<Option<Axis>, XPathError> {
        self.skip_ws();
        if self.peek() != Some(b'/') {
            return Ok(None);
        }
        self.pos += 1;
        if self.peek() == Some(b'/') {
            self.pos += 1;
            Ok(Some(Axis::Descendant))
        } else {
            Ok(Some(Axis::Child))
        }
    }

    fn is_name_char(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b >= 0x80
    }

    /// Parses a step name; `@name` becomes `"@name"`. Returns the name
    /// and whether it was an attribute.
    fn parse_step_name(&mut self) -> Result<(String, bool), XPathError> {
        self.skip_ws();
        let is_attr = if self.peek() == Some(b'@') {
            self.pos += 1;
            true
        } else {
            false
        };
        let start = self.pos;
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(
                self.err(format!("expected step name, found {:?}", self.peek().map(|c| c as char)))
            );
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("name is not valid UTF-8".into()))?;
        let name = if is_attr { format!("@{raw}") } else { raw.to_owned() };
        Ok((name, is_attr))
    }

    fn parse_predicates(&mut self, twig: &mut TwigPattern, node: usize) -> Result<(), XPathError> {
        loop {
            self.skip_ws();
            if self.peek() != Some(b'[') {
                return Ok(());
            }
            self.pos += 1;
            self.parse_predicate_body(twig, node)?;
            self.skip_ws();
            if self.peek() != Some(b']') {
                return Err(self.err("expected ']'".into()));
            }
            self.pos += 1;
        }
    }

    fn parse_predicate_body(
        &mut self,
        twig: &mut TwigPattern,
        node: usize,
    ) -> Result<(), XPathError> {
        self.skip_ws();
        if self.peek() == Some(b'.') {
            // [. = literal] — value condition on the current step.
            self.pos += 1;
            self.expect_eq()?;
            let lit = self.parse_literal()?;
            twig.nodes[node].value = Some(lit);
            return Ok(());
        }
        // Relative path, optionally with a leading '//' and a trailing
        // '= literal'.
        let first_axis = {
            self.skip_ws();
            if self.peek() == Some(b'/') {
                self.pos += 1;
                if self.peek() == Some(b'/') {
                    self.pos += 1;
                    Axis::Descendant
                } else {
                    return Err(self.err("predicate paths are relative ('//x' or 'x')".into()));
                }
            } else {
                Axis::Child
            }
        };
        let (name, _) = self.parse_step_name()?;
        let mut cur = twig.add_child(node, first_axis, &name, None);
        self.parse_predicates(twig, cur)?;
        while let Some(axis) = {
            self.skip_ws();
            // Stop before ']' or '='.
            match self.peek() {
                Some(b'/') => self.parse_axis()?,
                _ => None,
            }
        } {
            let (name, _) = self.parse_step_name()?;
            cur = twig.add_child(cur, axis, &name, None);
            self.parse_predicates(twig, cur)?;
        }
        self.skip_ws();
        if self.peek() == Some(b'=') {
            self.pos += 1;
            let lit = self.parse_literal()?;
            twig.nodes[cur].value = Some(lit);
        }
        Ok(())
    }

    fn expect_eq(&mut self) -> Result<(), XPathError> {
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return Err(self.err("expected '='".into()));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_literal(&mut self) -> Result<String, XPathError> {
        self.skip_ws();
        match self.peek() {
            Some(q @ (b'\'' | b'"')) => {
                self.pos += 1;
                let start = self.pos;
                while self.peek() != Some(q) {
                    if self.at_end() {
                        return Err(self.err("unterminated string literal".into()));
                    }
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("literal is not valid UTF-8".into()))?
                    .to_owned();
                self.pos += 1;
                Ok(s)
            }
            _ => {
                // Bare token: run of chars legal in the paper's unquoted
                // constants (numbers like 75.00, ids like person22082).
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
                {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(self.err("expected literal".into()));
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_owned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_valued_path() {
        let t = parse_xpath("/site/regions/namerica/item/quantity[. = '5']").unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.root_axis, Axis::Child);
        assert_eq!(t.nodes[4].tag, "quantity");
        assert_eq!(t.nodes[4].value.as_deref(), Some("5"));
        assert_eq!(t.output, 4);
        assert!(t.is_pc_path());
    }

    #[test]
    fn bare_literals() {
        let t = parse_xpath("/a/b[. = 5]").unwrap();
        assert_eq!(t.nodes[1].value.as_deref(), Some("5"));
        let t = parse_xpath("/a[b = 75.00]").unwrap();
        assert_eq!(t.nodes[1].value.as_deref(), Some("75.00"));
    }

    #[test]
    fn paper_intro_query() {
        let t = parse_xpath(
            "/book[title='XML']//author[fn='jane' ]\
                             [ln='doe']",
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(t.len(), 5);
        assert_eq!(t.nodes[0].tag, "book");
        assert_eq!(t.nodes[1].tag, "title");
        assert_eq!(t.nodes[1].value.as_deref(), Some("XML"));
        assert_eq!(t.nodes[2].tag, "author");
        let (axis, parent) = t.parent_of(2).unwrap();
        assert_eq!(axis, Axis::Descendant);
        assert_eq!(parent, 0);
        assert_eq!(t.output, 2, "output is the author step");
        assert_eq!(t.nodes[3].value.as_deref(), Some("jane"));
        assert_eq!(t.nodes[4].value.as_deref(), Some("doe"));
    }

    #[test]
    fn attribute_steps_and_predicates() {
        let t = parse_xpath(
            "/site[people/person/profile/@income = 46814.17]\
             /open_auctions/open_auction[@increase = 75.00]",
        )
        .unwrap();
        // site, people, person, profile, @income, open_auctions,
        // open_auction, @increase
        assert_eq!(t.len(), 8);
        let income = t.nodes.iter().position(|n| n.tag == "@income").unwrap();
        assert_eq!(t.nodes[income].value.as_deref(), Some("46814.17"));
        let auction = t.nodes.iter().position(|n| n.tag == "open_auction").unwrap();
        assert_eq!(t.output, auction);
        let increase = t.nodes.iter().position(|n| n.tag == "@increase").unwrap();
        let (axis, parent) = t.parent_of(increase).unwrap();
        assert_eq!(axis, Axis::Child);
        assert_eq!(parent, auction);
    }

    #[test]
    fn leading_descendant_and_inner_recursion() {
        let t = parse_xpath("//item/mailbox/mail/date").unwrap();
        assert_eq!(t.root_axis, Axis::Descendant);
        let t = parse_xpath("/site//item[quantity = 2]/mailbox").unwrap();
        let item = t.nodes.iter().position(|n| n.tag == "item").unwrap();
        let (axis, _) = t.parent_of(item).unwrap();
        assert_eq!(axis, Axis::Descendant);
        assert_eq!(t.nodes[t.output].tag, "mailbox");
    }

    #[test]
    fn descendant_inside_predicate() {
        let t = parse_xpath("/site[//person/name = 'X']/regions").unwrap();
        let person = t.nodes.iter().position(|n| n.tag == "person").unwrap();
        let (axis, parent) = t.parent_of(person).unwrap();
        assert_eq!(axis, Axis::Descendant);
        assert_eq!(parent, 0);
    }

    #[test]
    fn multi_branch_counts() {
        let t = parse_xpath(
            "/site[people/person/profile/@income = 9876.00]\
             [regions/namerica/item/location = 'united states']\
             /open_auctions/open_auction[@increase = 3.00]",
        )
        .unwrap();
        assert_eq!(t.branch_count(), 3);
        assert!(t.branch_points().contains(&0));
    }

    #[test]
    fn structural_predicate_without_value() {
        let t = parse_xpath("/site/open_auctions/open_auction[bidder]/seller").unwrap();
        let bidder = t.nodes.iter().position(|n| n.tag == "bidder").unwrap();
        assert_eq!(t.nodes[bidder].value, None);
        assert_eq!(t.nodes[t.output].tag, "seller");
    }

    #[test]
    fn errors() {
        assert!(parse_xpath("site/x").is_err(), "must be absolute");
        assert!(parse_xpath("/a[b = ").is_err());
        assert!(parse_xpath("/a[b").is_err());
        assert!(parse_xpath("/a/b]").is_err());
        assert!(parse_xpath("/a['unterminated]").is_err());
        assert!(parse_xpath("/").is_err());
        assert!(parse_xpath("/a[/b = 'x']").is_err(), "predicate paths are relative");
    }

    #[test]
    fn display_of_parsed_twig_mentions_all_parts() {
        let t = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let s = t.to_string();
        for frag in ["book", "title", "XML", "author", "jane", "doe"] {
            assert!(s.contains(frag), "{s} missing {frag}");
        }
    }
}
