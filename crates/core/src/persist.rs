//! Index persistence: build once, reopen without rebuild.
//!
//! [`QueryEngine::persist`] flushes a built engine into a single
//! `.xtwig` file over a [`FileBackend`]; [`QueryEngine::open`] (and
//! `TwigService::open` in `xtwig-service`) reattach it with **zero
//! index-construction work** — no path enumeration, no sorting, no bulk
//! loads, no page allocation. Opening reads the catalog, reconstructs
//! each structure's Rust shell from stored metadata, and serves index
//! pages straight from the file through per-structure buffer pools, so
//! the paper's cold-cache setting finally runs against a real backend
//! instead of a simulated one.
//!
//! ## File layout
//!
//! ```text
//! page 0            superblock: magic "XTWIGIDX", format version,
//!                   total pages, metadata extent (start page, byte
//!                   length, FNV-1a checksum)
//! pages 1..         one contiguous extent per built structure's buffer
//!                   pool, in catalog order (RP, DP, Edge, DG, IF, ASR,
//!                   JI) — a verbatim copy of the pool's page image, so
//!                   pool-local page ids (B+-tree roots, sibling links,
//!                   heap page lists) remain valid unchanged
//! trailing pages    the metadata blob: forest snapshot, path
//!                   statistics, engine options, per-structure catalog
//!                   (extent location, pool capacity, B+-tree roots and
//!                   shape, heap extents, codec metadata), and the
//!                   per-strategy `structure_digest` values
//! ```
//!
//! On open, each extent is wrapped in an [`ExtentBackend`] — a
//! copy-on-write view of the shared file — so pool-local page ids keep
//! working and post-open index maintenance can never corrupt the file.
//! The stored digests are verified against
//! [`BufferPool::content_hash`] through the reopened pools, which
//! proves the on-disk page images are byte-identical to the pools that
//! were persisted.

use crate::asr::AccessSupportRelations;
use crate::dataguide::DataGuide;
use crate::datapaths::DataPaths;
use crate::edge::EdgeTable;
use crate::engine::{QueryEngine, Strategy};
use crate::fabric::IndexFabric;
use crate::joinindex::JoinIndices;
use crate::paths::PathStats;
use crate::rootpaths::RootPaths;
use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use xtwig_btree::{BTree, BTreeOptions};
use xtwig_opt::CalibrationLog;
use xtwig_rel::codec::IdListCodec;
use xtwig_storage::{
    BufferPool, DiskManager, ExtentBackend, FileBackend, PageId, StorageBackend, PAGE_SIZE,
};
use xtwig_xml::{TagId, XmlForest};

/// On-disk format version; bumped on any layout change so stale files
/// fail fast with [`OpenError::VersionMismatch`] instead of misparsing.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"XTWIGIDX";

/// FNV-1a over a byte slice (the same hash family as
/// [`BufferPool::content_hash`]); guards the metadata blob.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Metadata codec
// ---------------------------------------------------------------------------

/// A malformed or truncated catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "index catalog: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

pub(crate) fn format_err<T>(msg: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError(msg.into()))
}

/// Little-endian append-only writer for the metadata blob.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn push_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte.
    pub fn push_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u32`.
    pub fn push_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn push_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn push_bytes(&mut self, v: &[u8]) {
        self.push_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn push_str(&mut self, v: &str) {
        self.push_bytes(v.as_bytes());
    }

    /// The written bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked reader mirroring [`ByteWriter`].
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return format_err(format!("truncated at byte {} (wanted {n} more)", self.pos));
        };
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, FormatError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => format_err(format!("invalid bool byte {b}")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, FormatError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, FormatError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, FormatError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], FormatError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| FormatError(format!("blob of {n} bytes")))?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, FormatError> {
        match std::str::from_utf8(self.bytes()?) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => format_err("non-UTF-8 string"),
        }
    }
}

// Shared encoders for pieces several structures persist.

pub(crate) fn write_codec(w: &mut ByteWriter, codec: IdListCodec) {
    w.push_u8(match codec {
        IdListCodec::Delta => 0,
        IdListCodec::Plain => 1,
    });
}

pub(crate) fn read_codec(r: &mut ByteReader<'_>) -> Result<IdListCodec, FormatError> {
    match r.u8()? {
        0 => Ok(IdListCodec::Delta),
        1 => Ok(IdListCodec::Plain),
        b => format_err(format!("unknown IdList codec {b}")),
    }
}

/// Persists a B+-tree's shape: root page (pool-local), height, entry and
/// page counters, and build options.
pub(crate) fn write_tree_meta(w: &mut ByteWriter, tree: &BTree) {
    let stats = tree.stats();
    let options = tree.options();
    w.push_u32(tree.root().0);
    w.push_u32(stats.height);
    w.push_u64(stats.entries);
    w.push_u64(stats.pages);
    w.push_bool(options.prefix_truncation);
    w.push_f64(options.fill_factor);
}

/// Reattaches a B+-tree persisted by [`write_tree_meta`] over `pool`.
pub(crate) fn read_tree_meta(
    r: &mut ByteReader<'_>,
    pool: Arc<BufferPool>,
) -> Result<BTree, FormatError> {
    let root = PageId(r.u32()?);
    let height = r.u32()?;
    let entries = r.u64()?;
    let pages = r.u64()?;
    let prefix_truncation = r.bool()?;
    let fill_factor = r.f64()?;
    if !root.is_valid() || u64::from(root.0) >= u64::from(pool.num_pages()) {
        return format_err(format!("tree root {root} outside its pool"));
    }
    if height == 0 {
        return format_err("tree height 0");
    }
    if !(0.0..=1.0).contains(&fill_factor) {
        return format_err(format!("fill factor {fill_factor} out of range"));
    }
    Ok(BTree::from_parts(
        pool,
        BTreeOptions { prefix_truncation, fill_factor },
        root,
        height,
        entries,
        pages,
    ))
}

/// Persists a tag-id path (ASR/JI table keys).
pub(crate) fn write_tag_path(w: &mut ByteWriter, path: &[TagId]) {
    w.push_u32(path.len() as u32);
    for t in path {
        w.push_u32(t.0);
    }
}

/// Reads a tag-id path written by [`write_tag_path`].
pub(crate) fn read_tag_path(r: &mut ByteReader<'_>) -> Result<Vec<TagId>, FormatError> {
    let n = r.u32()? as usize;
    let mut path = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        path.push(TagId(r.u32()?));
    }
    Ok(path)
}

// ---------------------------------------------------------------------------
// Errors and reports
// ---------------------------------------------------------------------------

/// Why a persist failed.
#[derive(Debug)]
pub enum PersistError {
    /// The backend file could not be created, written, or synced.
    Io(std::io::Error),
    /// A structure's pool held dirty pages pinned by an outstanding
    /// write guard — a concurrent writer owns part of the image, so a
    /// copy taken now could be torn. (`BufferPool::flush_all` skips
    /// pinned frames by design; persistence must not.)
    PinnedPages {
        /// The structure whose pool was mid-write.
        structure: &'static str,
        /// Dirty pages `flush_all` had to skip.
        skipped: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist I/O: {e}"),
            PersistError::PinnedPages { structure, skipped } => write!(
                f,
                "cannot persist while {structure} has {skipped} pinned dirty page(s) \
                 (concurrent writer?)"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Why an open failed.
#[derive(Debug)]
pub enum OpenError {
    /// The file could not be read (including misaligned/oversize files
    /// rejected by [`FileBackend::open`]).
    Io(std::io::Error),
    /// The file is not an xtwig index, or its catalog is corrupt or
    /// truncated.
    Format(String),
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version recorded in the superblock.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// A strategy's reopened page image does not hash to the digest
    /// recorded at persist time (bit rot or out-of-band modification).
    DigestMismatch {
        /// The failing strategy.
        strategy: Strategy,
        /// Digest recorded in the catalog.
        stored: u64,
        /// Digest computed from the reopened pools.
        computed: u64,
    },
}

impl fmt::Display for OpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "open I/O: {e}"),
            OpenError::Format(msg) => write!(f, "not a valid xtwig index: {msg}"),
            OpenError::VersionMismatch { found, expected } => {
                write!(f, "index format version {found} (this build reads {expected})")
            }
            OpenError::DigestMismatch { strategy, stored, computed } => write!(
                f,
                "stored digest {stored:#018x} for {strategy} does not match reopened pages \
                 ({computed:#018x}) — corrupt index file"
            ),
        }
    }
}

impl std::error::Error for OpenError {}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

impl From<FormatError> for OpenError {
    fn from(e: FormatError) -> Self {
        OpenError::Format(e.to_string())
    }
}

/// What [`QueryEngine::persist`] wrote.
#[derive(Debug, Clone)]
pub struct PersistReport {
    /// Total pages in the index file (superblock + extents + catalog).
    pub file_pages: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Strategies whose structures were persisted.
    pub strategies: Vec<Strategy>,
}

/// What [`QueryEngine::open`] did — the build-phase accounting behind
/// the "zero rebuild" claim.
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// Total pages in the index file.
    pub file_pages: u32,
    /// Strategies available in the reopened engine.
    pub strategies: Vec<Strategy>,
    /// Pages allocated in any structure pool during open. Reattaching
    /// metadata allocates nothing, so this is always 0 — a fresh build
    /// of the same engine allocates every index page. The CLI asserts
    /// on it.
    pub open_allocations: u64,
    /// Strategy digests verified against the stored catalog.
    pub digests_verified: usize,
}

// ---------------------------------------------------------------------------
// Structure kinds (catalog order)
// ---------------------------------------------------------------------------

const KIND_RP: u8 = 0;
const KIND_DP: u8 = 1;
const KIND_EDGE: u8 = 2;
const KIND_DG: u8 = 3;
const KIND_IF: u8 = 4;
const KIND_ASR: u8 = 5;
const KIND_JI: u8 = 6;

/// Stable on-disk strategy ids — deliberately NOT derived from
/// `Strategy::ALL`'s position (that is a *reporting* order a future PR
/// may reorder or extend, which would silently change the file format
/// without a [`FORMAT_VERSION`] bump).
fn strategy_to_u8(s: Strategy) -> u8 {
    match s {
        Strategy::RootPaths => 0,
        Strategy::DataPaths => 1,
        Strategy::Edge => 2,
        Strategy::DataGuideEdge => 3,
        Strategy::IndexFabricEdge => 4,
        Strategy::Asr => 5,
        Strategy::JoinIndex => 6,
        // Auto is a selection directive over *built* strategies — the
        // catalog only ever records concrete configurations.
        Strategy::Auto => unreachable!("Auto is never persisted"),
    }
}

fn strategy_from_u8(b: u8) -> Result<Strategy, FormatError> {
    Ok(match b {
        0 => Strategy::RootPaths,
        1 => Strategy::DataPaths,
        2 => Strategy::Edge,
        3 => Strategy::DataGuideEdge,
        4 => Strategy::IndexFabricEdge,
        5 => Strategy::Asr,
        6 => Strategy::JoinIndex,
        _ => return format_err(format!("unknown strategy id {b}")),
    })
}

// ---------------------------------------------------------------------------
// Persist
// ---------------------------------------------------------------------------

/// Copies one structure pool into the file as a contiguous extent,
/// returning `(base_page, extent_pages)`.
fn copy_pool(
    file: &FileBackend,
    pool: &BufferPool,
    structure: &'static str,
) -> Result<(u32, u32), PersistError> {
    let skipped = pool.flush_all();
    if skipped > 0 {
        return Err(PersistError::PinnedPages { structure, skipped });
    }
    let base = file.num_pages();
    let pages = pool.num_pages();
    for pid in 0..pages {
        let fp = file.allocate();
        debug_assert_eq!(fp.0, base + pid, "extents must be contiguous");
        // Fetching through the pool reflects the latest content even if
        // a page is dirty-resident (flush above already wrote those
        // back, but fetch would be correct regardless).
        let page = pool.fetch(PageId(pid));
        file.write_page(fp, &page);
    }
    Ok((base, pages))
}

impl<F: Borrow<XmlForest>> QueryEngine<F> {
    /// Strategies whose structures this engine has built, in the
    /// paper's reporting order.
    pub fn built_strategies(&self) -> Vec<Strategy> {
        Strategy::ALL.iter().copied().filter(|&s| self.has_strategy(s)).collect()
    }

    /// Writes the engine — forest snapshot, path statistics, every
    /// built structure's pages and catalog metadata, per-strategy
    /// digests — into a single index file at `path`, then syncs it
    /// durably.
    ///
    /// The file is written to a `<path>.tmp` sibling and atomically
    /// renamed over `path` only after the final sync, so a persist that
    /// fails midway (disk full, kill) never destroys a valid index
    /// already at `path` — and a reopened engine can safely re-persist
    /// to **its own** path (its extents keep reading the old inode
    /// while the replacement is assembled), which is how overlay
    /// maintenance is made durable.
    ///
    /// [`QueryEngine::open`] reattaches the result with zero rebuild
    /// work; the stored digests guarantee the reopened page images are
    /// byte-identical.
    pub fn persist<P: AsRef<Path>>(&self, path: P) -> Result<PersistReport, PersistError> {
        let path = path.as_ref();
        let tmp = {
            let mut name =
                path.file_name().map(|n| n.to_os_string()).unwrap_or_else(|| "index".into());
            name.push(".tmp");
            path.with_file_name(name)
        };
        match self.persist_into(&tmp) {
            Ok(report) => {
                std::fs::rename(&tmp, path)?;
                Ok(report)
            }
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }

    fn persist_into(&self, path: &Path) -> Result<PersistReport, PersistError> {
        let file = FileBackend::create(path)?;
        let superblock = file.allocate();
        debug_assert_eq!(superblock, PageId(0));

        let mut catalog = ByteWriter::new();
        catalog.push_bytes(&self.forest().to_snapshot());
        self.stats.write_meta(&mut catalog);
        match &self.pruned_tags {
            None => catalog.push_bool(false),
            Some(tags) => {
                catalog.push_bool(true);
                let mut sorted: Vec<u32> = tags.iter().map(|t| t.0).collect();
                sorted.sort_unstable();
                catalog.push_u32(sorted.len() as u32);
                for t in sorted {
                    catalog.push_u32(t);
                }
            }
        }
        catalog.push_bool(self.structural_ad_joins);

        // One catalog entry per built structure: kind, extent, pool
        // capacity, then the structure's own metadata.
        type Entry<'e> = (u8, &'static str, &'e Arc<BufferPool>, Box<dyn Fn(&mut ByteWriter) + 'e>);
        let mut entries: Vec<Entry<'_>> = Vec::new();
        if let Some((i, p)) = &self.rp {
            entries.push((KIND_RP, "ROOTPATHS", p, Box::new(move |w| i.write_meta(w))));
        }
        if let Some((i, p)) = &self.dp {
            entries.push((KIND_DP, "DATAPATHS", p, Box::new(move |w| i.write_meta(w))));
        }
        if let Some((i, p)) = &self.edge {
            entries.push((KIND_EDGE, "Edge", p, Box::new(move |w| i.write_meta(w))));
        }
        if let Some((i, p)) = &self.dg {
            entries.push((KIND_DG, "DataGuide", p, Box::new(move |w| i.write_meta(w))));
        }
        if let Some((i, p)) = &self.fab {
            entries.push((KIND_IF, "IndexFabric", p, Box::new(move |w| i.write_meta(w))));
        }
        if let Some((i, p)) = &self.asr {
            entries.push((KIND_ASR, "ASR", p, Box::new(move |w| i.write_meta(w))));
        }
        if let Some((i, p)) = &self.ji {
            entries.push((KIND_JI, "JoinIndices", p, Box::new(move |w| i.write_meta(w))));
        }

        catalog.push_u32(entries.len() as u32);
        for (kind, name, pool, write_meta) in entries {
            let (base, pages) = copy_pool(&file, pool, name)?;
            catalog.push_u8(kind);
            catalog.push_u32(base);
            catalog.push_u32(pages);
            catalog.push_u32(pool.capacity() as u32);
            write_meta(&mut catalog);
        }

        // Per-strategy digests, computed from the live pools (the file
        // copy is verbatim, so the reopened pools must reproduce them).
        let strategies = self.built_strategies();
        catalog.push_u32(strategies.len() as u32);
        for &s in &strategies {
            catalog.push_u8(strategy_to_u8(s));
            catalog.push_u64(self.structure_digest(s));
        }

        // Append the catalog blob page by page, then the superblock.
        let catalog = catalog.finish();
        let catalog_start = file.num_pages();
        let mut page = vec![0u8; PAGE_SIZE];
        for chunk in catalog.chunks(PAGE_SIZE) {
            let fp = file.allocate();
            page[..chunk.len()].copy_from_slice(chunk);
            page[chunk.len()..].fill(0);
            file.write_page(fp, &page);
        }
        let total_pages = file.num_pages();
        let mut sb = vec![0u8; PAGE_SIZE];
        sb[0..8].copy_from_slice(MAGIC);
        sb[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        sb[12..16].copy_from_slice(&total_pages.to_le_bytes());
        sb[16..20].copy_from_slice(&catalog_start.to_le_bytes());
        sb[20..28].copy_from_slice(&(catalog.len() as u64).to_le_bytes());
        sb[28..36].copy_from_slice(&fnv1a(&catalog).to_le_bytes());
        file.write_page(PageId(0), &sb);
        // One durable sync at the very end: a kill at any earlier point
        // leaves a file the superblock checks reject, never a torn one
        // that opens.
        file.sync()?;
        Ok(PersistReport {
            file_pages: total_pages,
            file_bytes: u64::from(total_pages) * PAGE_SIZE as u64,
            strategies,
        })
    }
}

// ---------------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------------

impl QueryEngine<Arc<XmlForest>> {
    /// Reopens a persisted index file with zero rebuild work; see
    /// [`QueryEngine::open_with_report`] for the accounting.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, OpenError> {
        Ok(Self::open_with_report(path)?.0)
    }

    /// Reopens a persisted index file, returning the engine plus an
    /// [`OpenReport`].
    ///
    /// Every stored strategy digest is verified against the reopened
    /// pools ([`BufferPool::content_hash`] over the extent-backed page
    /// images); the pools are then dropped back to a cold cache so the
    /// first query after open performs real physical reads.
    pub fn open_with_report<P: AsRef<Path>>(path: P) -> Result<(Self, OpenReport), OpenError> {
        // Read-only: the file is a sealed artifact (every write on the
        // reopen path goes to the ExtentBackend overlay), so a chmod
        // 444 index or a read-only mount must still open.
        let file = Arc::new(FileBackend::open_read_only(path)?);
        let file_pages = file.num_pages();
        if file_pages == 0 {
            return Err(OpenError::Format("empty file".into()));
        }
        let mut sb = vec![0u8; PAGE_SIZE];
        file.read_page(PageId(0), &mut sb);
        if &sb[0..8] != MAGIC {
            return Err(OpenError::Format("bad magic (not an xtwig index)".into()));
        }
        let version = u32::from_le_bytes(sb[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(OpenError::VersionMismatch { found: version, expected: FORMAT_VERSION });
        }
        let recorded_pages = u32::from_le_bytes(sb[12..16].try_into().unwrap());
        if recorded_pages != file_pages {
            return Err(OpenError::Format(format!(
                "superblock records {recorded_pages} pages but the file has {file_pages} \
                 (truncated or appended-to)"
            )));
        }
        let catalog_start = u32::from_le_bytes(sb[16..20].try_into().unwrap());
        let catalog_len = u64::from_le_bytes(sb[20..28].try_into().unwrap());
        let catalog_checksum = u64::from_le_bytes(sb[28..36].try_into().unwrap());
        let catalog_len = usize::try_from(catalog_len)
            .map_err(|_| OpenError::Format("catalog length overflow".into()))?;
        let catalog_pages = catalog_len.div_ceil(PAGE_SIZE) as u64;
        if catalog_start == 0 || u64::from(catalog_start) + catalog_pages > u64::from(file_pages) {
            return Err(OpenError::Format(format!(
                "catalog extent (page {catalog_start}, {catalog_len} bytes) outside the file"
            )));
        }
        let mut catalog = vec![0u8; catalog_pages as usize * PAGE_SIZE];
        for (i, chunk) in catalog.chunks_mut(PAGE_SIZE).enumerate() {
            file.read_page(PageId(catalog_start + i as u32), chunk);
        }
        catalog.truncate(catalog_len);
        if fnv1a(&catalog) != catalog_checksum {
            return Err(OpenError::Format("catalog checksum mismatch (corrupt file)".into()));
        }

        let mut r = ByteReader::new(&catalog);
        let forest = Arc::new(
            XmlForest::from_snapshot(r.bytes()?)
                .map_err(|e| OpenError::Format(format!("forest snapshot: {e}")))?,
        );
        let stats = PathStats::open_meta(&mut r)?;
        let pruned_tags: Option<HashSet<TagId>> = if r.bool()? {
            let n = r.u32()? as usize;
            let mut tags = HashSet::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                tags.insert(TagId(r.u32()?));
            }
            Some(tags)
        } else {
            None
        };
        let structural_ad_joins = r.bool()?;

        let mut rp = None;
        let mut dp = None;
        let mut edge = None;
        let mut dg = None;
        let mut fab = None;
        let mut asr = None;
        let mut ji = None;
        let entry_count = r.u32()?;
        for _ in 0..entry_count {
            let kind = r.u8()?;
            let base = r.u32()?;
            let extent = r.u32()?;
            let capacity = r.u32()? as usize;
            if u64::from(base) + u64::from(extent) > u64::from(file_pages) {
                return Err(OpenError::Format(format!(
                    "structure extent [{base}, {}) outside the file",
                    u64::from(base) + u64::from(extent)
                )));
            }
            if capacity < 2 {
                return Err(OpenError::Format(format!("pool capacity {capacity} below minimum")));
            }
            // The builder's pool was sized for construction (the CLI
            // uses 40 MB per structure); a reopened pool never needs
            // more frames than its extent has pages, so cap it — a
            // tiny index must not eagerly allocate hundreds of MB of
            // zeroed frames just to be queried.
            let capacity = capacity.min(extent.max(2) as usize);
            let backend = ExtentBackend::new(file.clone(), base, extent);
            let pool =
                Arc::new(BufferPool::new(DiskManager::with_backend(Box::new(backend)), capacity));
            match kind {
                KIND_RP => rp = Some((RootPaths::open_meta(&mut r, pool.clone())?, pool)),
                KIND_DP => dp = Some((DataPaths::open_meta(&mut r, pool.clone())?, pool)),
                KIND_EDGE => edge = Some((EdgeTable::open_meta(&mut r, pool.clone())?, pool)),
                KIND_DG => dg = Some((DataGuide::open_meta(&mut r, pool.clone())?, pool)),
                KIND_IF => fab = Some((IndexFabric::open_meta(&mut r, pool.clone())?, pool)),
                KIND_ASR => {
                    asr = Some((AccessSupportRelations::open_meta(&mut r, pool.clone())?, pool))
                }
                KIND_JI => ji = Some((JoinIndices::open_meta(&mut r, pool.clone())?, pool)),
                other => return Err(OpenError::Format(format!("unknown structure kind {other}"))),
            }
        }

        let digest_count = r.u32()? as usize;
        let mut digests = Vec::with_capacity(digest_count.min(64));
        for _ in 0..digest_count {
            let s = strategy_from_u8(r.u8()?)?;
            digests.push((s, r.u64()?));
        }
        if r.remaining() != 0 {
            return Err(OpenError::Format(format!("{} trailing catalog byte(s)", r.remaining())));
        }

        let engine = QueryEngine {
            forest,
            stats,
            rp,
            dp,
            pruned_tags,
            edge,
            dg,
            fab,
            asr,
            ji,
            structural_ad_joins,
            calibration: Arc::new(CalibrationLog::new(CalibrationLog::DEFAULT_CAPACITY)),
        };

        // Reattachment must not have built anything: no pool allocated
        // a single page (a fresh build allocates them all).
        let open_allocations: u64 = Strategy::ALL
            .iter()
            .flat_map(|&s| engine.pools_for(s))
            .map(|p| p.stats().snapshot().allocations)
            .sum();

        for &(s, stored) in &digests {
            if !engine.has_strategy(s) {
                return Err(OpenError::Format(format!(
                    "catalog records a digest for {s} but its structures are missing"
                )));
            }
            let computed = engine.structure_digest(s);
            if computed != stored {
                return Err(OpenError::DigestMismatch { strategy: s, stored, computed });
            }
        }
        // Digest verification touched every page; drop back to a cold
        // cache so the first query after open measures real physical
        // reads (stats reset with it).
        for &s in &Strategy::ALL {
            for pool in engine.pools_for(s) {
                pool.clear_cache();
                pool.stats().reset();
            }
        }

        let strategies = engine.built_strategies();
        let report = OpenReport {
            file_pages,
            strategies,
            open_allocations,
            digests_verified: digests.len(),
        };
        Ok((engine, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.push_u8(7);
        w.push_bool(true);
        w.push_u32(0xDEAD_BEEF);
        w.push_u64(u64::MAX - 1);
        w.push_f64(0.9);
        w.push_str("héllo");
        w.push_bytes(b"\x00\x01\x02");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 0.9);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err(), "reading past the end errors");
    }

    #[test]
    fn reader_rejects_bad_bool_and_truncation() {
        let mut r = ByteReader::new(&[2]);
        assert!(r.bool().is_err());
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.u32().is_err());
        // A length prefix pointing past the end must error, not panic.
        let mut w = ByteWriter::new();
        w.push_u64(1 << 40);
        let bytes = w.finish();
        assert!(ByteReader::new(&bytes).bytes().is_err());
    }

    #[test]
    fn strategy_ids_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(strategy_from_u8(strategy_to_u8(s)).unwrap(), s);
        }
        assert!(strategy_from_u8(7).is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
