//! Plan selection: merge joins over FreeIndex lookups vs. the
//! index-nested-loop strategy over BoundIndex probes (paper §2.3, §5.2.3).
//!
//! The paper lets DB2's optimizer pick join strategies from collected
//! statistics; this module plays that role for the twig engine. The
//! qualitative rule it reproduces (§5.2.3): INLJ wins when (a) one branch
//! is very selective, (b) the others are unselective, and (c) each
//! selective match meets few unselective matches — i.e., when the branch
//! point is *low* (many instances of the branch tag). When branch
//! selectivities are comparable, or the branch point is the root (one
//! instance), sort-merge over FreeIndex lookups is as good or better.

use crate::decompose::CompiledTwig;
use crate::family::PcSubpathQuery;
use crate::paths::PathStats;
use xtwig_xml::TagDict;

/// Cost charged per BoundIndex probe (B+-tree descent), in row units.
const PROBE_COST: u64 = 3;

/// How a subpath's matches connect to the rows accumulated so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinHow {
    /// Equi-join on a twig node bound by both sides; `shared` lists every
    /// common node for consistency checking, `deepest` is the join key.
    SharedNode {
        /// Join-key twig node.
        deepest: usize,
        /// All shared twig nodes.
        shared: Vec<usize>,
    },
    /// The subpath's segment hangs below `upper` via a `//` edge: join on
    /// `row[upper]` being an ancestor of the match's segment root.
    AncestorOf {
        /// Upper twig node (bound by earlier steps).
        upper: usize,
        /// Segment root twig node bound by this subpath.
        seg_root: usize,
    },
    /// Reverse direction: this subpath binds `upper`, while earlier rows
    /// bound the lower segment root.
    DescendantBound {
        /// Upper twig node (bound by this subpath).
        upper: usize,
        /// Lower segment-root twig node (bound by earlier steps).
        seg_root: usize,
    },
}

/// A BoundIndex probe that can replace a free lookup for this subpath.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Twig node whose binding becomes the probe head.
    pub anchor: usize,
    /// The residue pattern probed under the head.
    pub pattern: PcSubpathQuery,
    /// Twig node bound by each pattern step.
    pub step_nodes: Vec<usize>,
}

/// One evaluation step.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Index into `CompiledTwig::subpaths`.
    pub subpath: usize,
    /// Join method (None for the first step).
    pub join: Option<JoinHow>,
    /// Available BoundIndex probe, when the plan is INLJ-eligible here.
    pub probe: Option<ProbeSpec>,
    /// Estimated match cardinality.
    pub estimate: u64,
}

/// Overall plan kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// FreeIndex lookups stitched with hash/merge joins (paper §3.2).
    Merge,
    /// Selective driver + BoundIndex probes (paper §3.3).
    IndexNestedLoop,
}

/// A complete plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Chosen strategy.
    pub kind: PlanKind,
    /// Steps in evaluation order (driver first).
    pub steps: Vec<PlanStep>,
    /// Estimated cost of the merge alternative.
    pub merge_cost: u64,
    /// Estimated cost of the INLJ alternative.
    pub inlj_cost: u64,
}

impl QueryPlan {
    /// Rebinds the probe-pattern literals after [`CompiledTwig::rebind`]
    /// re-read predicate values from a new twig of the same shape. The
    /// step order and merge-vs-INLJ choice are kept from the originally
    /// planned literals (parameterized-plan semantics: the first query
    /// of a shape decides the plan for the shape).
    pub fn rebind(&self, compiled: &CompiledTwig) -> QueryPlan {
        let mut out = self.clone();
        for step in &mut out.steps {
            if let Some(probe) = &mut step.probe {
                probe.pattern.value = compiled.subpaths[step.subpath].q.value.clone();
            }
        }
        out
    }
}

/// Builds a plan for `compiled` using `stats`.
pub fn choose_plan(compiled: &CompiledTwig, stats: &PathStats, dict: &TagDict) -> QueryPlan {
    let n = compiled.subpaths.len();
    let estimates: Vec<u64> = compiled.subpaths.iter().map(|sp| stats.estimate(&sp.q)).collect();

    // Driver: the most selective subpath.
    let driver = (0..n).min_by_key(|&i| estimates[i]).expect("twig has at least one subpath");

    // Greedy connected order starting at the driver.
    let mut order: Vec<usize> = vec![driver];
    let mut bound: Vec<usize> = compiled.subpaths[driver].nodes.clone();
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != driver).collect();
    let mut steps: Vec<PlanStep> =
        vec![PlanStep { subpath: driver, join: None, probe: None, estimate: estimates[driver] }];

    while !remaining.is_empty() {
        // Prefer: (1) connected by a shared node, (2) connected by an AD
        // edge in either direction; among eligible, the most selective.
        let mut best: Option<(usize, JoinHow)> = None;
        let mut best_est = u64::MAX;
        for &cand in &remaining {
            let sp = &compiled.subpaths[cand];
            // Three ways a subpath can connect to the bound set, tried in
            // order: a shared twig node; its segment's `//` parent bound
            // above it; or a bound child segment hanging below one of its
            // nodes.
            let shared_join = sp.nodes.iter().rev().find(|n| bound.contains(n)).map(|&deepest| {
                let shared: Vec<usize> =
                    sp.nodes.iter().filter(|n| bound.contains(n)).copied().collect();
                JoinHow::SharedNode { deepest, shared }
            });
            let ancestor_join = || {
                compiled.segments[sp.segment]
                    .parent
                    .filter(|(upper, _)| bound.contains(upper))
                    .map(|(upper, _)| JoinHow::AncestorOf { upper, seg_root: sp.nodes[0] })
            };
            let descendant_join = || {
                compiled
                    .segments
                    .iter()
                    .filter_map(|seg| seg.parent.map(|(u, _)| (u, seg.root)))
                    .find(|&(u, root)| sp.nodes.contains(&u) && bound.contains(&root))
                    .map(|(u, root)| JoinHow::DescendantBound { upper: u, seg_root: root })
            };
            let join = shared_join.or_else(ancestor_join).or_else(descendant_join);
            if let Some(j) = join {
                if estimates[cand] < best_est {
                    best_est = estimates[cand];
                    best = Some((cand, j));
                }
            }
        }
        let (next, join) = best.expect("twig is connected; some subpath must be joinable");
        remaining.retain(|&i| i != next);
        order.push(next);
        let probe = probe_spec(compiled, dict, next, &bound);
        bound.extend(compiled.subpaths[next].nodes.iter().copied());
        bound.sort_unstable();
        bound.dedup();
        steps.push(PlanStep { subpath: next, join: Some(join), probe, estimate: estimates[next] });
    }

    // Cost the two alternatives.
    let merge_cost: u64 = estimates.iter().sum();
    let mut inlj_cost = estimates[driver];
    let mut any_probe = false;
    for step in &steps[1..] {
        match &step.probe {
            Some(p) => {
                any_probe = true;
                let anchor_tag = dict.lookup(&compiled.twig.nodes[p.anchor].tag);
                let n_anchor = anchor_tag.map(|t| stats.tag_count(t)).unwrap_or(1).max(1);
                let heads = estimates[driver].min(n_anchor).max(1);
                inlj_cost = inlj_cost
                    .saturating_add(heads * PROBE_COST)
                    .saturating_add((heads * step.estimate) / n_anchor);
            }
            None => inlj_cost = inlj_cost.saturating_add(step.estimate),
        }
    }
    let kind = if any_probe && inlj_cost < merge_cost {
        PlanKind::IndexNestedLoop
    } else {
        PlanKind::Merge
    };
    QueryPlan { kind, steps, merge_cost, inlj_cost }
}

/// Computes the BoundIndex probe for `subpath`, anchored at a node the
/// earlier steps have bound. Same-segment: the residue below the deepest
/// shared node, as an anchored (child) pattern. Cross-segment: the whole
/// subpath under the AD-edge's upper node, as a `//` pattern.
fn probe_spec(
    compiled: &CompiledTwig,
    dict: &TagDict,
    subpath: usize,
    bound: &[usize],
) -> Option<ProbeSpec> {
    let sp = &compiled.subpaths[subpath];
    if let Some(pos) = sp.nodes.iter().rposition(|n| bound.contains(n)) {
        // Shared node: probe the residue below it.
        if pos + 1 >= sp.nodes.len() {
            return None; // nothing below the shared node (value-only subpath)
        }
        let anchor = sp.nodes[pos];
        let step_nodes: Vec<usize> = sp.nodes[pos + 1..].to_vec();
        let tags = step_nodes
            .iter()
            .map(|&n| dict.lookup(&compiled.twig.nodes[n].tag))
            .collect::<Option<Vec<_>>>()?;
        Some(ProbeSpec {
            anchor,
            pattern: PcSubpathQuery { tags, anchored: true, value: sp.q.value.clone() },
            step_nodes,
        })
    } else {
        let (upper, _) = compiled.segments[sp.segment].parent?;
        if !bound.contains(&upper) {
            return None;
        }
        Some(ProbeSpec {
            anchor: upper,
            pattern: PcSubpathQuery {
                tags: sp.q.tags.clone(),
                anchored: false,
                value: sp.q.value.clone(),
            },
            step_nodes: sp.nodes.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::paths::PathStats;
    use crate::xpath::parse_xpath;
    use xtwig_xml::tree::fig1_book_document;
    use xtwig_xml::XmlForest;

    fn setup(xpath: &str) -> (CompiledTwig, PathStats, TagDict) {
        let f = fig1_book_document();
        let twig = parse_xpath(xpath).unwrap();
        let c = decompose(&twig, f.dict()).unwrap();
        let stats = PathStats::build(&f);
        (c, stats, f.dict().clone())
    }

    #[test]
    fn single_path_plan_is_one_step_merge() {
        let (c, stats, dict) = setup("/book/title[. = 'XML']");
        let plan = choose_plan(&c, &stats, &dict);
        assert_eq!(plan.kind, PlanKind::Merge);
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.steps[0].join.is_none());
    }

    #[test]
    fn intro_twig_plan_is_connected() {
        let (c, stats, dict) = setup("/book[title='XML']//author[fn='jane'][ln='doe']");
        let plan = choose_plan(&c, &stats, &dict);
        assert_eq!(plan.steps.len(), 3);
        // Every non-driver step has a join method.
        assert!(plan.steps[1..].iter().all(|s| s.join.is_some()));
        // The two author subpaths join on the shared author node.
        let shared_joins = plan
            .steps
            .iter()
            .filter(|s| matches!(s.join, Some(JoinHow::SharedNode { .. })))
            .count();
        let ad_joins = plan
            .steps
            .iter()
            .filter(|s| {
                matches!(
                    s.join,
                    Some(JoinHow::AncestorOf { .. }) | Some(JoinHow::DescendantBound { .. })
                )
            })
            .count();
        assert_eq!(shared_joins + ad_joins, 2);
        assert!(ad_joins >= 1, "book//author edge needs an ancestor join");
    }

    #[test]
    fn probe_specs_cover_same_segment_residues() {
        // /book[year='2000']/chapter/title : branch at book; the chapter
        // subpath's probe hangs below book as an anchored pattern.
        let (c, stats, dict) = setup("/book[year = '2000']/chapter/title");
        let plan = choose_plan(&c, &stats, &dict);
        assert_eq!(plan.steps.len(), 2);
        let second = &plan.steps[1];
        let probe = second.probe.as_ref().expect("probe for same-segment branch");
        assert_eq!(c.twig.nodes[probe.anchor].tag, "book");
        assert!(probe.pattern.anchored);
        assert_eq!(probe.pattern.tags.len(), probe.step_nodes.len());
    }

    #[test]
    fn cross_segment_probe_is_descendant_pattern() {
        let (c, stats, dict) = setup("/book[title='XML']//author[fn='jane'][ln='doe']");
        let plan = choose_plan(&c, &stats, &dict);
        // At least one step probes under the book anchor with a //
        // pattern (when the driver is the title subpath) or an anchored
        // author residue (when the driver is an author subpath).
        let has_probe = plan.steps[1..].iter().any(|s| s.probe.is_some());
        assert!(has_probe);
    }

    #[test]
    fn inlj_wins_with_low_branch_point_and_skew() {
        // Emulate the Fig. 12(d) shape on the book data: driver fn=john
        // (1 match) under author (3 instances), other branch nickname
        // (3 matches).
        let (c, stats, dict) = setup("//author[fn = 'john']/nickname");
        let plan = choose_plan(&c, &stats, &dict);
        assert!(
            plan.inlj_cost <= plan.merge_cost + 1,
            "inlj {} merge {}",
            plan.inlj_cost,
            plan.merge_cost
        );
    }

    #[test]
    fn merge_wins_when_branch_point_is_root_like() {
        // Branch at book (single instance): probing buys nothing.
        let (c, stats, dict) = setup("/book[title = 'XML']/year");
        let plan = choose_plan(&c, &stats, &dict);
        assert_eq!(plan.kind, PlanKind::Merge);
    }

    /// A flat corpus with exactly-Zipfian `key` values (32, 16, 8, 4,
    /// 2, 1 instances of `k0` … `k5`) — the §5.2.3 crossover data: the
    /// branch point `rec` is low (63 instances), one branch's
    /// selectivity sweeps from 1 to 32 while the other (`val`) stays
    /// unselective.
    fn zipf_forest() -> XmlForest {
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("db");
        for (i, count) in [32u64, 16, 8, 4, 2, 1].into_iter().enumerate() {
            for _ in 0..count {
                b.open("rec");
                b.leaf("key", &format!("k{i}"));
                b.leaf("val", "payload");
                b.close();
            }
        }
        b.close();
        b.finish();
        f
    }

    fn zipf_plan(f: &XmlForest, literal: &str) -> QueryPlan {
        let twig = parse_xpath(&format!("//rec[key = '{literal}']/val")).unwrap();
        let c = decompose(&twig, f.dict()).unwrap();
        choose_plan(&c, &PathStats::build(f), f.dict())
    }

    #[test]
    fn skewed_stats_flip_merge_vs_inlj_at_the_selectivity_boundary() {
        let f = zipf_forest();
        // Rarest literal: one selective driver row, probes beat
        // scanning every unselective `val` row (Fig. 12d's INLJ case).
        let rare = zipf_plan(&f, "k5");
        assert_eq!(rare.kind, PlanKind::IndexNestedLoop, "{rare:?}");
        assert_eq!(rare.steps[0].estimate, 1, "driver is the rare branch");
        // Commonest literal: selectivities are comparable, per-head
        // probing buys nothing over one merge pass.
        let common = zipf_plan(&f, "k0");
        assert_eq!(common.kind, PlanKind::Merge, "{common:?}");
        // Walking the Zipf ladder from rare to common crosses the
        // boundary exactly once: INLJ while selective, merge after.
        let kinds: Vec<PlanKind> =
            (0..6).rev().map(|i| zipf_plan(&f, &format!("k{i}")).kind).collect();
        let first_merge = kinds.iter().position(|&k| k == PlanKind::Merge).expect("k0 is merge");
        assert!(
            kinds[first_merge..].iter().all(|&k| k == PlanKind::Merge),
            "plan kind must flip at most once along the skew ladder: {kinds:?}"
        );
        assert!(first_merge >= 1, "the rare end must stay INLJ: {kinds:?}");
    }

    #[test]
    fn inlj_cost_tracks_driver_selectivity_under_skew() {
        let f = zipf_forest();
        // The INLJ estimate must grow monotonically with the driver's
        // cardinality while the merge estimate grows only additively —
        // that relationship is what creates the crossover.
        let costs: Vec<(u64, u64)> = (0..6)
            .map(|i| {
                let p = zipf_plan(&f, &format!("k{i}"));
                (p.inlj_cost, p.merge_cost)
            })
            .collect();
        for w in costs.windows(2) {
            assert!(w[0].0 >= w[1].0, "inlj cost must not grow as the driver gets rarer");
            assert!(w[0].1 >= w[1].1, "merge cost shrinks with the valued branch");
        }
        let (rare_inlj, rare_merge) = costs[5];
        assert!(rare_inlj < rare_merge);
        let (common_inlj, common_merge) = costs[0];
        assert!(common_inlj >= common_merge);
    }

    #[test]
    fn estimates_are_attached_to_steps() {
        let (c, stats, dict) = setup("//author[fn = 'jane']/ln");
        let plan = choose_plan(&c, &stats, &dict);
        let driver = &plan.steps[0];
        assert_eq!(driver.estimate, 2); // two jane fns
        assert!(plan.steps[1].estimate >= 3); // all ln instances

        // Driver is the most selective subpath.
        assert!(plan.steps[1..].iter().all(|s| s.estimate >= driver.estimate));
    }
}
