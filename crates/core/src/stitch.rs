//! Stack-based structural (containment) joins.
//!
//! The paper points at the structural-join literature — "novel join
//! algorithms [Zhang et al., Al-Khalifa et al., Bruno et al.] … can be
//! used to stitch together the intermediate results produced using our
//! index structures" (§6) — but could not use them inside DB2 ("none of
//! these algorithms has been implemented in commercial database
//! systems", §5.1.2). This module implements the classic
//! **stack-tree-desc** structural join of Al-Khalifa et al. (ICDE 2002)
//! so the reproduction can also evaluate that stitching style:
//!
//! given an *ancestor* list and a *descendant* list, both sorted by
//! pre-order id, emit all `(ancestor, descendant)` containment pairs in
//! one merge pass with an in-memory stack — O(|A| + |D| + |output|),
//! versus the ancestor-unnesting hash join the engine uses by default.
//!
//! Containment is decided on `(start, end)` intervals, which the forest's
//! pre-order ids and subtree ends provide directly (the paper's footnote
//! 3: "alternative identifiers such as those in [Zhang et al.] can be
//! used, to enable containment queries" — our ids are exactly that).

use xtwig_xml::{NodeId, XmlForest};

/// One node as a containment interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Pre-order id (interval start).
    pub start: u64,
    /// Last pre-order id in the subtree (interval end, inclusive).
    pub end: u64,
}

impl Interval {
    /// Builds the interval of `id` from the forest.
    pub fn of(forest: &XmlForest, id: u64) -> Interval {
        Interval { start: id, end: forest.subtree_end(NodeId(id)).0 }
    }

    /// True iff `self` properly contains `other`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.start < other.start && other.start <= self.end
    }
}

/// Sorted-input stack-based structural join: all `(a, d)` pairs with `a`
/// a proper ancestor of `d`.
///
/// # Panics
/// Debug-asserts that inputs are sorted by `start`.
pub fn stack_tree_desc(ancestors: &[Interval], descendants: &[Interval]) -> Vec<(u64, u64)> {
    debug_assert!(ancestors.windows(2).all(|w| w[0].start <= w[1].start));
    debug_assert!(descendants.windows(2).all(|w| w[0].start <= w[1].start));
    let mut out = Vec::new();
    let mut stack: Vec<Interval> = Vec::new();
    let mut ai = 0usize;
    for d in descendants {
        // Pop finished ancestors.
        while let Some(top) = stack.last() {
            if top.end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        // Push every ancestor starting before this descendant.
        while ai < ancestors.len() && ancestors[ai].start < d.start {
            let a = ancestors[ai];
            ai += 1;
            while let Some(top) = stack.last() {
                if top.end < a.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            // Nested ancestors stay stacked together.
            if stack.last().is_none_or(|top| top.end >= a.start) {
                stack.push(a);
            }
        }
        for a in stack.iter() {
            if a.contains(d) {
                out.push((a.start, d.start));
            }
        }
    }
    out
}

/// Convenience: joins two id lists through the forest's intervals,
/// returning `(ancestor_id, descendant_id)` pairs. Inputs need not be
/// sorted.
pub fn containment_join(
    forest: &XmlForest,
    ancestor_ids: &[u64],
    descendant_ids: &[u64],
) -> Vec<(u64, u64)> {
    let mut anc: Vec<Interval> = ancestor_ids.iter().map(|&a| Interval::of(forest, a)).collect();
    anc.sort_unstable_by_key(|i| i.start);
    anc.dedup();
    let mut desc: Vec<Interval> = descendant_ids.iter().map(|&d| Interval::of(forest, d)).collect();
    desc.sort_unstable_by_key(|i| i.start);
    desc.dedup();
    stack_tree_desc(&anc, &desc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn naive_pairs(forest: &XmlForest, anc: &[u64], desc: &[u64]) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for &a in anc {
            for &d in desc {
                if forest.is_ancestor(NodeId(a), NodeId(d)) {
                    out.push((a, d));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn book_authors_containment() {
        let f = fig1_book_document();
        // book (1) and allauthors (5) as ancestors; the three authors as
        // descendants.
        let pairs = containment_join(&f, &[1, 5], &[6, 21, 41]);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(1, 6), (1, 21), (1, 41), (5, 6), (5, 21), (5, 41)]);
    }

    #[test]
    fn matches_naive_on_scattered_sets() {
        let f = fig1_book_document();
        let all: Vec<u64> = f.iter_nodes().map(|n| n.0).collect();
        // Several ancestor/descendant subset shapes.
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (all.clone(), all.clone()),
            (vec![1], all.clone()),
            (all.clone(), vec![50]),
            (vec![5, 6, 21, 41], vec![7, 10, 22, 25, 42, 45]),
            (vec![47, 49], vec![48, 50, 51]),
            (vec![2, 3, 4], vec![2, 3, 4]), // siblings: no pairs
        ];
        for (anc, desc) in cases {
            let mut got = containment_join(&f, &anc, &desc);
            got.sort_unstable();
            assert_eq!(got, naive_pairs(&f, &anc, &desc), "anc {anc:?} desc {desc:?}");
        }
    }

    #[test]
    fn nested_ancestors_all_emit() {
        // a > a > a chain with a descendant at the bottom: every stacked
        // ancestor pairs with it.
        let mut f = xtwig_xml::XmlForest::new();
        let mut b = f.builder();
        b.open("a"); // 1
        b.open("a"); // 2
        b.open("a"); // 3
        b.open("d"); // 4
        b.close();
        b.close();
        b.close();
        b.close();
        b.finish();
        let mut got = containment_join(&f, &[1, 2, 3], &[4]);
        got.sort_unstable();
        assert_eq!(got, vec![(1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn self_is_not_ancestor() {
        let f = fig1_book_document();
        let got = containment_join(&f, &[6], &[6]);
        assert!(got.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let f = fig1_book_document();
        assert!(containment_join(&f, &[], &[1]).is_empty());
        assert!(containment_join(&f, &[1], &[]).is_empty());
    }

    #[test]
    fn interval_semantics() {
        let f = fig1_book_document();
        let book = Interval::of(&f, 1);
        let author = Interval::of(&f, 6);
        assert!(book.contains(&author));
        assert!(!author.contains(&book));
        assert!(!author.contains(&author));
    }

    #[test]
    fn linear_pass_on_disjoint_ranges() {
        // Ancestors and descendants from different subtrees never pair.
        let f = fig1_book_document();
        let got = containment_join(&f, &[6], &[22, 25]); // author 6 vs author 21's leaves
        assert!(got.is_empty());
    }
}
