//! The DATAPATHS index (paper §3.3).
//!
//! A B+-tree on `HeadId · LeafValue · ReverseSchemaPath` over **all
//! subpaths** of root-to-leaf paths, returning the complete IdList. This
//! is "exactly what is needed to solve the BoundIndex problem in one
//! index lookup": given a head node id, a probe returns every data path
//! rooted there that matches a PCsubpath pattern — which is what enables
//! the index-nested-loop join strategy (paper §5.2.3).
//!
//! A virtual root (head id 0) parents all documents, so the same tree
//! also answers FreeIndex probes (paper footnote 4); those rows are the
//! ROOTPATHS rows.
//!
//! Key layout:
//!
//! ```text
//! [ HeadId, 9 bytes ]
//! [ LeafValue: null | escaped string prefix ]
//! [ ReverseSchemaPath designators (from the head down) ]
//! [ 0x01 terminator ]
//! [ uniquifier: last node id, 9 bytes ]
//! ```
//!
//! Stored IdLists exclude the head (Fig. 5); lookups re-attach it so
//! every [`PathMatch`] has `tags`/`ids` aligned.

use crate::designator;
use crate::family::{
    BoundIndex, FamilyPosition, FreeIndex, IdListSublist, IndexedColumn, PathIndex, PathMatch,
    PcSubpathQuery, SchemaPathSubset,
};
use crate::parallel::{map_shards, ShardPlan};
use crate::paths::{for_each_root_path_in, for_each_subpath_in};
use crate::rootpaths::{push_value_part, skip_value_part};
use std::sync::Arc;
use xtwig_btree::{bulk_build, merge_sorted_runs, BTree, BTreeOptions};
use xtwig_rel::codec::{self, IdListCodec, KeyBuf};
use xtwig_storage::BufferPool;
use xtwig_xml::{TagId, XmlForest};

/// Head-id pruning predicate (paper §4.3): rows whose head is not a
/// potential query branch point may be dropped, trading INLJ coverage for
/// space. `Sync` so sharded builds can apply it from worker threads.
pub type HeadFilter<'a> = dyn Fn(u64, &[TagId]) -> bool + Sync + 'a;

/// Build options.
#[derive(Clone, Copy, Default)]
pub struct DataPathsOptions {
    /// IdList storage codec (delta by default — §4.1).
    pub idlist: IdListCodec,
    /// B+-tree options.
    pub btree: BTreeOptions,
}

/// The DATAPATHS index.
pub struct DataPaths {
    tree: BTree,
    idlist: IdListCodec,
    rows: u64,
    pruned: bool,
}

impl DataPaths {
    /// Builds the full index from `forest` into `pool`.
    pub fn build(forest: &XmlForest, pool: Arc<BufferPool>, options: DataPathsOptions) -> Self {
        Self::build_filtered(forest, pool, options, None)
    }

    /// Builds with an optional head filter (§4.3 HeadId pruning). Rows
    /// with `head == 0` (FreeIndex rows) are always kept; a row with a
    /// real head is kept when `filter(head, path_tags_from_head)` returns
    /// true.
    pub fn build_filtered(
        forest: &XmlForest,
        pool: Arc<BufferPool>,
        options: DataPathsOptions,
        filter: Option<&HeadFilter<'_>>,
    ) -> Self {
        Self::build_filtered_sharded(forest, pool, options, filter, &ShardPlan::sequential(forest))
    }

    /// Shard-parallel [`Self::build`]; see
    /// [`RootPaths::build_sharded`](crate::rootpaths::RootPaths::build_sharded)
    /// for the run-merge argument that makes the output byte-identical.
    pub fn build_sharded(
        forest: &XmlForest,
        pool: Arc<BufferPool>,
        options: DataPathsOptions,
        plan: &ShardPlan,
    ) -> Self {
        Self::build_filtered_sharded(forest, pool, options, None, plan)
    }

    /// Shard-parallel [`Self::build_filtered`]. The head filter runs on
    /// the worker threads, and because shard boundaries may fall
    /// mid-subtree, rows sharing one head can be delivered on
    /// *different* threads (a head's descendants may span shards). That
    /// is only sound because the filter must be a pure function of
    /// `(head, path_tags)` — a filter keeping cross-row state would
    /// diverge from the sequential build.
    pub fn build_filtered_sharded(
        forest: &XmlForest,
        pool: Arc<BufferPool>,
        options: DataPathsOptions,
        filter: Option<&HeadFilter<'_>>,
        plan: &ShardPlan,
    ) -> Self {
        let runs = map_shards(plan, |range| {
            let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            // FreeIndex rows: head = virtual root, IdList = full root path.
            for_each_root_path_in(forest, range, |tags, ids, value| {
                entries.push(Self::encode_row(options.idlist, 0, tags, ids, ids, value));
            });
            // BoundIndex rows: every subpath; stored IdList excludes the head.
            for_each_subpath_in(forest, range, |head, tags, ids, value| {
                if let Some(f) = filter {
                    if !f(head, tags) {
                        return;
                    }
                }
                entries.push(Self::encode_row(options.idlist, head, tags, ids, &ids[1..], value));
            });
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            entries
        });
        let rows = runs.iter().map(|r| r.len() as u64).sum();
        let tree = bulk_build(pool, options.btree, merge_sorted_runs(runs));
        DataPaths { tree, idlist: options.idlist, rows, pruned: filter.is_some() }
    }

    fn encode_row(
        codec_opt: IdListCodec,
        head: u64,
        tags: &[TagId],
        ids: &[u64],
        stored_ids: &[u64],
        value: Option<&str>,
    ) -> (Vec<u8>, Vec<u8>) {
        let mut key = KeyBuf::new();
        key.push_u64(head);
        push_value_part(&mut key, value);
        let mut path = Vec::with_capacity(tags.len() + 1);
        designator::push_path_reversed(&mut path, tags);
        path.push(designator::TERMINATOR);
        key.push_raw(&path);
        key.push_u64(*ids.last().unwrap());
        (key.finish(), codec::encode_idlist(codec_opt, stored_ids))
    }

    /// Number of stored rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// True when built with a head filter (INLJ is then only valid for
    /// retained heads — paper §4.3's caveat).
    pub fn is_pruned(&self) -> bool {
        self.pruned
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    /// Inserts the index entries for a new node whose full root path is
    /// `tags`/`ids` with optional leaf `value` (paper §7): one FreeIndex
    /// row (head 0) plus one BoundIndex row per ancestor position —
    /// depth + 1 entries per value variant.
    pub fn insert_path(&mut self, tags: &[TagId], ids: &[u64], value: Option<&str>) {
        let mut add = |head: u64, t: &[TagId], full: &[u64], stored: &[u64], v: Option<&str>| {
            let (key, payload) = Self::encode_row(self.idlist, head, t, full, stored, v);
            self.tree.insert(&key, &payload);
            self.rows += 1;
        };
        add(0, tags, ids, ids, None);
        if let Some(v) = value {
            add(0, tags, ids, ids, Some(v));
        }
        for start in 0..tags.len() {
            let head = ids[start];
            add(head, &tags[start..], &ids[start..], &ids[start + 1..], None);
            if let Some(v) = value {
                add(head, &tags[start..], &ids[start..], &ids[start + 1..], Some(v));
            }
        }
    }

    /// Removes the entries for the node at the end of `tags`/`ids`.
    /// Self-locating, like ROOTPATHS deletes (§7).
    pub fn delete_path(&mut self, tags: &[TagId], ids: &[u64], value: Option<&str>) -> bool {
        let mut removed = false;
        let mut del = |head: u64, t: &[TagId], full: &[u64], v: Option<&str>| {
            let (key, _) = Self::encode_row(self.idlist, head, t, full, &[], v);
            if self.tree.delete(&key).is_some() {
                self.rows -= 1;
                removed = true;
            }
        };
        del(0, tags, ids, None);
        if let Some(v) = value {
            del(0, tags, ids, Some(v));
        }
        for start in 0..tags.len() {
            del(ids[start], &tags[start..], &ids[start..], None);
            if let Some(v) = value {
                del(ids[start], &tags[start..], &ids[start..], Some(v));
            }
        }
        removed
    }

    fn decode_entry(&self, head: u64, key: &[u8], payload: &[u8]) -> PathMatch {
        let pos = 9; // skip head component
        let (_value, pos) = skip_value_part(key, pos);
        let (tags, _next) = designator::decode_path_reversed(key, pos);
        let stored = codec::decode_idlist(self.idlist, payload);
        let ids = if head == 0 {
            stored
        } else {
            let mut ids = Vec::with_capacity(stored.len() + 1);
            ids.push(head);
            ids.extend_from_slice(&stored);
            ids
        };
        debug_assert_eq!(tags.len(), ids.len());
        PathMatch { head, tags, ids }
    }
}

impl DataPaths {
    /// Writes the catalog metadata a reopen needs (see
    /// [`crate::persist`]).
    pub(crate) fn write_meta(&self, w: &mut crate::persist::ByteWriter) {
        crate::persist::write_codec(w, self.idlist);
        w.push_bool(self.pruned);
        w.push_u64(self.rows);
        crate::persist::write_tree_meta(w, &self.tree);
    }

    /// Reattaches a persisted DATAPATHS index over `pool`.
    pub(crate) fn open_meta(
        r: &mut crate::persist::ByteReader<'_>,
        pool: Arc<BufferPool>,
    ) -> Result<Self, crate::persist::FormatError> {
        let idlist = crate::persist::read_codec(r)?;
        let pruned = r.bool()?;
        let rows = r.u64()?;
        let tree = crate::persist::read_tree_meta(r, pool)?;
        Ok(DataPaths { tree, idlist, rows, pruned })
    }
}

impl PathIndex for DataPaths {
    fn name(&self) -> &'static str {
        "DATAPATHS"
    }

    fn family_position(&self) -> FamilyPosition {
        FamilyPosition {
            schema_paths: SchemaPathSubset::AllSubpaths,
            idlist: IdListSublist::Full,
            indexed: vec![
                IndexedColumn::HeadId,
                IndexedColumn::LeafValue,
                IndexedColumn::ReverseSchemaPath,
            ],
        }
    }

    fn space_bytes(&self) -> u64 {
        self.tree.space_bytes()
    }
}

impl FreeIndex for DataPaths {
    fn lookup_free(&self, q: &PcSubpathQuery) -> Vec<PathMatch> {
        let mut key = KeyBuf::new();
        key.push_u64(0);
        push_value_part(&mut key, q.value.as_deref());
        let mut path = Vec::with_capacity(q.tags.len() + 1);
        designator::push_path_reversed(&mut path, &q.tags);
        if q.anchored {
            path.push(designator::TERMINATOR);
        }
        key.push_raw(&path);
        let prefix = key.finish();
        self.tree.scan_prefix(&prefix).map(|(k, v)| self.decode_entry(0, &k, &v)).collect()
    }
}

impl BoundIndex for DataPaths {
    fn lookup_bound(&self, head: u64, head_tag: TagId, q: &PcSubpathQuery) -> Vec<PathMatch> {
        let mut key = KeyBuf::new();
        key.push_u64(head);
        push_value_part(&mut key, q.value.as_deref());
        let mut path = Vec::with_capacity(q.tags.len() + 2);
        designator::push_path_reversed(&mut path, &q.tags);
        if q.anchored {
            // The first pattern step is a *child* of the head: the stored
            // path must be exactly head_tag/t1/…/tk.
            designator::push_designator(&mut path, head_tag);
            path.push(designator::TERMINATOR);
        }
        key.push_raw(&path);
        let prefix = key.finish();
        let min_len = q.tags.len() + 1; // strict descendant: path includes the head step
        self.tree
            .scan_prefix(&prefix)
            .map(|(k, v)| self.decode_entry(head, &k, &v))
            .filter(|m| m.tags.len() >= min_len)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtwig_xml::tree::fig1_book_document;

    fn build(forest: &XmlForest) -> DataPaths {
        DataPaths::build(forest, Arc::new(BufferPool::in_memory(8192)), DataPathsOptions::default())
    }

    fn q(
        forest: &XmlForest,
        steps: &[&str],
        anchored: bool,
        value: Option<&str>,
    ) -> PcSubpathQuery {
        PcSubpathQuery::resolve(forest.dict(), steps, anchored, value).expect("tags exist")
    }

    fn tag(forest: &XmlForest, name: &str) -> TagId {
        forest.dict().lookup(name).unwrap()
    }

    fn last_ids(ms: &[PathMatch]) -> Vec<u64> {
        let mut v: Vec<u64> = ms.iter().map(|m| m.last_id()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn free_lookup_equals_rootpaths_semantics() {
        let f = fig1_book_document();
        let dp = build(&f);
        let ms = dp.lookup_free(&q(&f, &["author", "fn"], false, Some("jane")));
        assert_eq!(last_ids(&ms), vec![7, 42]);
        for m in &ms {
            assert_eq!(m.head, 0);
            assert_eq!(m.ids[0], 1); // full root IdList
        }
        let anchored = dp.lookup_free(&q(&f, &["book", "title"], true, None));
        assert_eq!(last_ids(&anchored), vec![2]);
    }

    #[test]
    fn bound_lookup_restricts_to_head_subtree() {
        // Paper §3.3's example: probe authors under a known book id.
        let f = fig1_book_document();
        let dp = build(&f);
        let book = tag(&f, "book");
        let ms = dp.lookup_bound(1, book, &q(&f, &["author", "ln"], false, Some("doe")));
        assert_eq!(last_ids(&ms), vec![25, 45]);
        for m in &ms {
            assert_eq!(m.head, 1);
            assert_eq!(m.ids[0], 1); // head re-attached
            assert_eq!(m.tags[0], book);
        }
        // Under allauthors (5) the same pattern also matches both.
        let ua = dp.lookup_bound(
            5,
            tag(&f, "allauthors"),
            &q(&f, &["author", "ln"], false, Some("doe")),
        );
        assert_eq!(last_ids(&ua), vec![25, 45]);
        // Under the first author (6) it matches nothing.
        let none =
            dp.lookup_bound(6, tag(&f, "author"), &q(&f, &["author", "ln"], false, Some("doe")));
        assert!(none.is_empty());
    }

    #[test]
    fn bound_lookup_is_strict_descendant() {
        // //author under an author head must not match the head itself.
        let f = fig1_book_document();
        let dp = build(&f);
        let author = tag(&f, "author");
        let ms = dp.lookup_bound(6, author, &q(&f, &["author"], false, None));
        assert!(ms.is_empty(), "head must not match itself: {ms:?}");
        // But under book it matches all three authors.
        let under_book = dp.lookup_bound(1, tag(&f, "book"), &q(&f, &["author"], false, None));
        assert_eq!(last_ids(&under_book), vec![6, 21, 41]);
    }

    #[test]
    fn bound_anchored_lookup_requires_child_step() {
        let f = fig1_book_document();
        let dp = build(&f);
        // /author/fn='jane' anchored under allauthors (5): children only.
        let ms = dp.lookup_bound(
            5,
            tag(&f, "allauthors"),
            &q(&f, &["author", "fn"], true, Some("jane")),
        );
        assert_eq!(last_ids(&ms), vec![7, 42]);
        // Anchored /fn under allauthors: fn is a grandchild, so empty.
        let none = dp.lookup_bound(5, tag(&f, "allauthors"), &q(&f, &["fn"], true, None));
        assert!(none.is_empty());
        // Anchored /author under book: author is a grandchild, so empty.
        let none = dp.lookup_bound(1, tag(&f, "book"), &q(&f, &["author"], true, None));
        assert!(none.is_empty());
    }

    #[test]
    fn row_count_is_depth_weighted() {
        let f = fig1_book_document();
        let dp = build(&f);
        // head-0 rows: nodes + valued; head rows: sum(depth) structural +
        // sum(depth of valued nodes) valued.
        let nodes = (f.node_count() - 1) as u64;
        let valued: Vec<_> = f.iter_nodes().filter(|&n| f.value(n).is_some()).collect();
        let depth_sum: u64 = f.iter_nodes().map(|n| f.depth(n) as u64).sum();
        let valued_depth_sum: u64 = valued.iter().map(|&n| f.depth(n) as u64).sum();
        let expected = (nodes + valued.len() as u64) + depth_sum + valued_depth_sum;
        assert_eq!(dp.rows(), expected);
    }

    #[test]
    fn datapaths_is_larger_than_rootpaths() {
        // Fig. 9: DATAPATHS space grows with nesting depth.
        let f = fig1_book_document();
        let dp = build(&f);
        let rp = crate::rootpaths::RootPaths::build(
            &f,
            Arc::new(BufferPool::in_memory(4096)),
            crate::rootpaths::RootPathsOptions::default(),
        );
        assert!(dp.rows() > rp.rows());
        assert!(dp.space_bytes() >= rp.space_bytes());
    }

    #[test]
    fn head_pruning_drops_rows_but_keeps_free_lookups() {
        let f = fig1_book_document();
        let book = tag(&f, "book");
        let pruned = DataPaths::build_filtered(
            &f,
            Arc::new(BufferPool::in_memory(8192)),
            DataPathsOptions::default(),
            // Keep only rows headed at book nodes (a workload whose only
            // branch point is `book`).
            Some(&|_head, tags: &[TagId]| tags[0] == book),
        );
        let full = build(&f);
        assert!(pruned.rows() < full.rows());
        assert!(pruned.is_pruned());
        // FreeIndex rows survive pruning:
        let ms = pruned.lookup_free(&q(&f, &["author", "fn"], false, Some("jane")));
        assert_eq!(last_ids(&ms), vec![7, 42]);
        // Bound probes on retained heads still work:
        let ms = pruned.lookup_bound(1, book, &q(&f, &["author"], false, None));
        assert_eq!(ms.len(), 3);
        // ...but pruned heads return nothing (the §4.3 functionality loss).
        let none = pruned.lookup_bound(5, tag(&f, "allauthors"), &q(&f, &["author"], false, None));
        assert!(none.is_empty());
    }

    #[test]
    fn updates_maintain_bound_and_free_rows() {
        // §7: a node insertion touches one row per ancestor position
        // plus the FreeIndex row.
        let mut f = fig1_book_document();
        let tags: Vec<TagId> =
            ["book", "allauthors", "author", "fn"].iter().map(|t| f.dict_mut().intern(t)).collect();
        let mut dp = build(&f);
        let rows0 = dp.rows();
        dp.insert_path(&tags, &[1, 5, 900, 901], Some("ada"));
        // depth 4: 1 free + 4 bound rows, x2 for the valued variant.
        assert_eq!(dp.rows(), rows0 + 10);
        let q = q(&f, &["author", "fn"], false, Some("ada"));
        assert_eq!(dp.lookup_free(&q).len(), 1);
        let bound = dp.lookup_bound(5, tag(&f, "allauthors"), &q);
        assert_eq!(bound.len(), 1);
        assert_eq!(bound[0].ids, vec![5, 900, 901]);
        assert!(dp.delete_path(&tags, &[1, 5, 900, 901], Some("ada")));
        assert_eq!(dp.rows(), rows0);
        assert!(dp.lookup_free(&q).is_empty());
    }

    #[test]
    fn family_position_is_fig3_row() {
        let f = fig1_book_document();
        let dp = build(&f);
        let pos = dp.family_position();
        assert_eq!(pos.schema_paths, SchemaPathSubset::AllSubpaths);
        assert_eq!(pos.idlist, IdListSublist::Full);
        assert_eq!(pos.indexed.len(), 3);
        assert_eq!(pos.indexed[0], IndexedColumn::HeadId);
    }

    #[test]
    fn fig5_rows_are_present() {
        // Probe (head=5, null, AU*) — the "5 AU null [6]" row family.
        let f = fig1_book_document();
        let dp = build(&f);
        let ms = dp.lookup_bound(5, tag(&f, "allauthors"), &q(&f, &["author"], false, None));
        let mut idlists: Vec<Vec<u64>> = ms.iter().map(|m| m.ids.clone()).collect();
        idlists.sort();
        assert_eq!(idlists, vec![vec![5, 6], vec![5, 21], vec![5, 41]]);
    }
}
