//! Enumeration of the 4-ary relational representation (paper Fig. 2).
//!
//! A data path is a schema path plus an optional leaf value, associated
//! with the node the path starts at (`HeadId`) and the ids along it
//! (`IdList`). This module walks the forest once in document order and
//! streams rows to index builders:
//!
//! * [`for_each_root_path`] — one row per node: the root-to-node path
//!   (plus a second, valued row when the node has a leaf value). These
//!   are the ROOTPATHS rows (Fig. 4) and the `HeadId = virtual root` rows
//!   of DATAPATHS (Fig. 5, footnote 4).
//! * [`for_each_subpath`] — for every node, one row per path *suffix
//!   start*: all subpaths of root-to-leaf paths (the remaining DATAPATHS
//!   rows).
//!
//! It also builds [`PathStats`], the statistics the planner uses to rank
//! branch selectivities (paper §5.1.1 collects DB2 statistics the same
//! way).

use crate::parallel::{map_shards, ShardPlan};
use std::collections::HashMap;
use xtwig_xml::{NodeRange, TagId, XmlForest};

/// Streams `(tags, ids, value)` for the root-to-node path of every node.
///
/// The callback runs once per node with `value = None`, and — when the
/// node carries a leaf value — a second time with `value = Some(..)`,
/// mirroring the paired `null` / valued rows of Fig. 2.
pub fn for_each_root_path<F>(forest: &XmlForest, f: F)
where
    F: FnMut(&[TagId], &[u64], Option<&str>),
{
    if let Some(range) = forest.full_range() {
        for_each_root_path_in(forest, range, f);
    }
}

/// Seeds the enumeration stacks with the proper ancestors of a range's
/// first node: the range may start mid-document (see
/// [`xtwig_xml::XmlForest::partition_nodes`]), and pre-order iteration
/// from there only needs the ancestor chain to resume exactly where a
/// full-forest walk would have been.
fn seed_stacks(
    forest: &XmlForest,
    first: xtwig_xml::NodeId,
    tags: &mut Vec<TagId>,
    ids: &mut Vec<u64>,
) {
    let path = forest.root_path_ids(first);
    for &n in &path[..path.len().saturating_sub(1)] {
        tags.push(forest.tag(n));
        ids.push(n.0);
    }
}

/// [`for_each_root_path`] over one shard range (any contiguous
/// pre-order span; the ancestor stack is seeded from the first node's
/// root path).
pub fn for_each_root_path_in<F>(forest: &XmlForest, range: NodeRange, mut f: F)
where
    F: FnMut(&[TagId], &[u64], Option<&str>),
{
    let mut tags: Vec<TagId> = Vec::with_capacity(32);
    let mut ids: Vec<u64> = Vec::with_capacity(32);
    seed_stacks(forest, range.first, &mut tags, &mut ids);
    for node in forest.iter_range(range) {
        let depth = forest.depth(node);
        tags.truncate(depth - 1);
        ids.truncate(depth - 1);
        tags.push(forest.tag(node));
        ids.push(node.0);
        f(&tags, &ids, None);
        if let Some(v) = forest.value_str(node) {
            f(&tags, &ids, Some(v));
        }
    }
}

/// Streams every subpath row: for each node and each suffix of its root
/// path, `(head_id, tags_from_head, ids_from_head, value)`. `tags[0]` is
/// the head's own tag and `ids[0]` its id, matching Fig. 5 (where the
/// stored IdList excludes the head — builders drop `ids[0]` at encode
/// time).
pub fn for_each_subpath<F>(forest: &XmlForest, f: F)
where
    F: FnMut(u64, &[TagId], &[u64], Option<&str>),
{
    if let Some(range) = forest.full_range() {
        for_each_subpath_in(forest, range, f);
    }
}

/// [`for_each_subpath`] over one shard range (any contiguous pre-order
/// span, as with [`for_each_root_path_in`]).
pub fn for_each_subpath_in<F>(forest: &XmlForest, range: NodeRange, mut f: F)
where
    F: FnMut(u64, &[TagId], &[u64], Option<&str>),
{
    let mut tags: Vec<TagId> = Vec::with_capacity(32);
    let mut ids: Vec<u64> = Vec::with_capacity(32);
    seed_stacks(forest, range.first, &mut tags, &mut ids);
    for node in forest.iter_range(range) {
        let depth = forest.depth(node);
        tags.truncate(depth - 1);
        ids.truncate(depth - 1);
        tags.push(forest.tag(node));
        ids.push(node.0);
        let value = forest.value_str(node);
        for start in 0..tags.len() {
            f(ids[start], &tags[start..], &ids[start..], None);
            if let Some(v) = value {
                f(ids[start], &tags[start..], &ids[start..], Some(v));
            }
        }
    }
}

/// Per-path and per-value statistics collected in one forest pass.
#[derive(Debug, Default, Clone)]
pub struct PathStats {
    /// Instances per distinct root-anchored schema path.
    path_counts: HashMap<Vec<TagId>, u64>,
    /// Instances per `(leaf tag, value)`.
    tag_value_counts: HashMap<(TagId, String), u64>,
    /// Instances per tag.
    tag_counts: HashMap<TagId, u64>,
    /// Total element/attribute nodes.
    nodes: u64,
}

impl PathStats {
    /// Collects statistics from `forest`.
    pub fn build(forest: &XmlForest) -> Self {
        Self::build_sharded(forest, &ShardPlan::sequential(forest))
    }

    /// Collects statistics shard-parallel, merging the per-shard counts.
    /// Counts are additive, so the merge is exact: the result equals
    /// [`PathStats::build`] on any shard plan.
    pub fn build_sharded(forest: &XmlForest, plan: &ShardPlan) -> Self {
        let shards = map_shards(plan, |range| Self::build_range(forest, range));
        let mut stats = PathStats::default();
        for shard in shards {
            stats.merge(shard);
        }
        stats
    }

    fn build_range(forest: &XmlForest, range: NodeRange) -> Self {
        let mut stats = PathStats::default();
        for_each_root_path_in(forest, range, |tags, _ids, value| match value {
            None => {
                *stats.path_counts.entry(tags.to_vec()).or_insert(0) += 1;
                *stats.tag_counts.entry(*tags.last().unwrap()).or_insert(0) += 1;
                stats.nodes += 1;
            }
            Some(v) => {
                *stats
                    .tag_value_counts
                    .entry((*tags.last().unwrap(), v.to_owned()))
                    .or_insert(0) += 1;
            }
        });
        stats
    }

    /// Adds another shard's counts into this one.
    pub fn merge(&mut self, other: PathStats) {
        for (k, v) in other.path_counts {
            *self.path_counts.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.tag_value_counts {
            *self.tag_value_counts.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.tag_counts {
            *self.tag_counts.entry(k).or_insert(0) += v;
        }
        self.nodes += other.nodes;
    }

    /// Number of distinct root-anchored schema paths (the paper reports
    /// 235 for DBLP and 902 for XMark, §4.2).
    pub fn distinct_schema_paths(&self) -> usize {
        self.path_counts.len()
    }

    /// Total element/attribute nodes.
    pub fn node_count(&self) -> u64 {
        self.nodes
    }

    /// Instances of an exact root-anchored schema path.
    pub fn path_count(&self, tags: &[TagId]) -> u64 {
        self.path_counts.get(tags).copied().unwrap_or(0)
    }

    /// Instances of nodes with `tag`.
    pub fn tag_count(&self, tag: TagId) -> u64 {
        self.tag_counts.get(&tag).copied().unwrap_or(0)
    }

    /// Instances of `(leaf tag, value)`.
    pub fn tag_value_count(&self, tag: TagId, value: &str) -> u64 {
        self.tag_value_counts.get(&(tag, value.to_owned())).copied().unwrap_or(0)
    }

    /// Iterates distinct root paths with their instance counts.
    pub fn iter_paths(&self) -> impl Iterator<Item = (&[TagId], u64)> {
        self.path_counts.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Writes the statistics into an index catalog (see
    /// [`crate::persist`]) so a reopened engine plans queries without
    /// re-scanning the forest. Maps are emitted in sorted key order so
    /// the catalog bytes are deterministic.
    pub(crate) fn write_meta(&self, w: &mut crate::persist::ByteWriter) {
        let mut paths: Vec<(&Vec<TagId>, u64)> =
            self.path_counts.iter().map(|(k, &v)| (k, v)).collect();
        paths.sort_unstable();
        w.push_u32(paths.len() as u32);
        for (path, count) in paths {
            crate::persist::write_tag_path(w, path);
            w.push_u64(count);
        }
        let mut tag_values: Vec<(&(TagId, String), u64)> =
            self.tag_value_counts.iter().map(|(k, &v)| (k, v)).collect();
        tag_values.sort_unstable();
        w.push_u32(tag_values.len() as u32);
        for ((tag, value), count) in tag_values {
            w.push_u32(tag.0);
            w.push_str(value);
            w.push_u64(count);
        }
        let mut tags: Vec<(TagId, u64)> = self.tag_counts.iter().map(|(&k, &v)| (k, v)).collect();
        tags.sort_unstable();
        w.push_u32(tags.len() as u32);
        for (tag, count) in tags {
            w.push_u32(tag.0);
            w.push_u64(count);
        }
        w.push_u64(self.nodes);
    }

    /// Reads statistics written by [`PathStats::write_meta`].
    pub(crate) fn open_meta(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<Self, crate::persist::FormatError> {
        let mut stats = PathStats::default();
        let n = r.u32()? as usize;
        for _ in 0..n {
            let path = crate::persist::read_tag_path(r)?;
            let count = r.u64()?;
            stats.path_counts.insert(path, count);
        }
        let n = r.u32()? as usize;
        for _ in 0..n {
            let tag = TagId(r.u32()?);
            let value = r.str()?;
            let count = r.u64()?;
            stats.tag_value_counts.insert((tag, value), count);
        }
        let n = r.u32()? as usize;
        for _ in 0..n {
            let tag = TagId(r.u32()?);
            let count = r.u64()?;
            stats.tag_counts.insert(tag, count);
        }
        stats.nodes = r.u64()?;
        Ok(stats)
    }

    /// Estimated matches of a PCsubpath pattern (delegates to the
    /// shared estimator in `xtwig-opt`, so the planner and the
    /// cost-based strategy selector agree on every cardinality).
    pub fn estimate(&self, q: &crate::family::PcSubpathQuery) -> u64 {
        xtwig_opt::pattern_matches(self, &q.tags, q.anchored, q.value.as_deref())
    }
}

/// `PathStats` is the optimizer's statistics source: its per-path
/// instance table doubles as the DataGuide's path catalog (annotated
/// with counts), and the `(leaf tag, value)` table supplies bound-
/// predicate selectivities.
impl xtwig_opt::CardinalitySource for PathStats {
    fn path_instances(&self, tags: &[TagId]) -> u64 {
        self.path_count(tags)
    }

    fn suffix_instances(&self, tags: &[TagId]) -> u64 {
        self.path_counts.iter().filter(|(path, _)| path.ends_with(tags)).map(|(_, &c)| c).sum()
    }

    fn matching_path_count(&self, tags: &[TagId], anchored: bool) -> u64 {
        if anchored {
            u64::from(self.path_counts.contains_key(tags))
        } else {
            self.path_counts.keys().filter(|path| path.ends_with(tags)).count() as u64
        }
    }

    fn tag_instances(&self, tag: TagId) -> u64 {
        self.tag_count(tag)
    }

    fn value_instances(&self, tag: TagId, value: &str) -> u64 {
        self.tag_value_count(tag, value)
    }

    fn node_count(&self) -> u64 {
        self.nodes
    }

    fn mean_depth(&self) -> f64 {
        let weighted: u64 = self.path_counts.iter().map(|(p, &c)| p.len() as u64 * c).sum();
        if self.nodes == 0 {
            1.0
        } else {
            weighted as f64 / self.nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::PcSubpathQuery;
    use xtwig_xml::tree::fig1_book_document;

    #[test]
    fn root_path_rows_count() {
        let f = fig1_book_document();
        let mut structural = 0u64;
        let mut valued = 0u64;
        for_each_root_path(&f, |_t, _i, v| {
            if v.is_none() {
                structural += 1;
            } else {
                valued += 1;
            }
        });
        assert_eq!(structural, (f.node_count() - 1) as u64); // per node, minus virtual root
        let with_values = f.iter_nodes().filter(|&n| f.value(n).is_some()).count() as u64;
        assert_eq!(valued, with_values);
    }

    #[test]
    fn root_path_rows_match_fig4_shape() {
        let f = fig1_book_document();
        #[allow(clippy::type_complexity)]
        let mut rows: Vec<(Vec<String>, Vec<u64>, Option<String>)> = Vec::new();
        for_each_root_path(&f, |t, i, v| {
            rows.push((
                t.iter().map(|&t| f.dict().name(t).to_owned()).collect(),
                i.to_vec(),
                v.map(str::to_owned),
            ));
        });
        // Fig. 4 row: FAUB jane [1,5,6,7] (forward path book/allauthors/author/fn).
        let jane = rows
            .iter()
            .find(|(t, _, v)| {
                t == &["book", "allauthors", "author", "fn"] && v.as_deref() == Some("jane")
            })
            .expect("jane row");
        assert_eq!(jane.1, vec![1, 5, 6, 7]);
        // Fig. 4 row: B null [1].
        let book = rows.iter().find(|(t, _, v)| t == &["book"] && v.is_none()).unwrap();
        assert_eq!(book.1, vec![1]);
    }

    #[test]
    fn subpath_rows_match_fig5_shape() {
        let f = fig1_book_document();
        #[allow(clippy::type_complexity)]
        let mut rows: Vec<(u64, Vec<String>, Vec<u64>, Option<String>)> = Vec::new();
        for_each_subpath(&f, |h, t, i, v| {
            rows.push((
                h,
                t.iter().map(|&t| f.dict().name(t).to_owned()).collect(),
                i.to_vec(),
                v.map(str::to_owned),
            ));
        });
        // Fig. 5: head=5 (allauthors), path UAF, idlist-from-head [5,6,7].
        let row = rows
            .iter()
            .find(|(h, t, _, v)| {
                *h == 5 && t == &["allauthors", "author", "fn"] && v.as_deref() == Some("jane")
            })
            .expect("UAF jane row under head 5");
        assert_eq!(row.2, vec![5, 6, 7]);
        // Fig. 5: head=1, path "B", single-node path.
        assert!(rows
            .iter()
            .any(|(h, t, i, v)| *h == 1 && t == &["book"] && i == &vec![1] && v.is_none()));
    }

    #[test]
    fn subpath_row_count_is_sum_of_depths() {
        let f = fig1_book_document();
        let mut structural = 0u64;
        for_each_subpath(&f, |_h, _t, _i, v| {
            if v.is_none() {
                structural += 1;
            }
        });
        let expected: u64 = f.iter_nodes().map(|n| f.depth(n) as u64).sum();
        assert_eq!(structural, expected);
    }

    #[test]
    fn stats_counts() {
        let f = fig1_book_document();
        let s = PathStats::build(&f);
        assert_eq!(s.node_count(), (f.node_count() - 1) as u64);
        let dict = f.dict();
        let author = dict.lookup("author").unwrap();
        assert_eq!(s.tag_count(author), 3);
        let fn_tag = dict.lookup("fn").unwrap();
        assert_eq!(s.tag_value_count(fn_tag, "jane"), 2);
        assert_eq!(s.tag_value_count(fn_tag, "john"), 1);
        assert_eq!(s.tag_value_count(fn_tag, "nobody"), 0);
        let path: Vec<TagId> =
            ["book", "allauthors", "author"].iter().map(|t| dict.lookup(t).unwrap()).collect();
        assert_eq!(s.path_count(&path), 3);
        assert!(s.distinct_schema_paths() >= 10);
    }

    #[test]
    fn sharded_stats_equal_sequential() {
        let mut f = XmlForest::new();
        for i in 0..9 {
            let mut b = f.builder();
            b.open("book");
            b.leaf("title", if i % 3 == 0 { "XML" } else { "SQL" });
            b.open("author");
            b.leaf("fn", "jane");
            b.close();
            b.close();
            b.finish();
        }
        let seq = PathStats::build(&f);
        for shards in [2, 3, 4, 9] {
            let plan = crate::parallel::ShardPlan::new(&f, shards);
            let par = PathStats::build_sharded(&f, &plan);
            assert_eq!(par.node_count(), seq.node_count());
            assert_eq!(par.distinct_schema_paths(), seq.distinct_schema_paths());
            for (path, count) in seq.iter_paths() {
                assert_eq!(par.path_count(path), count, "{shards} shards");
            }
            let title = f.dict().lookup("title").unwrap();
            assert_eq!(par.tag_value_count(title, "XML"), seq.tag_value_count(title, "XML"));
        }
    }

    #[test]
    fn estimates_track_selectivity() {
        let f = fig1_book_document();
        let s = PathStats::build(&f);
        let dict = f.dict();
        let q_all_fn = PcSubpathQuery::resolve(dict, &["author", "fn"], false, None).unwrap();
        let q_jane = PcSubpathQuery::resolve(dict, &["author", "fn"], false, Some("jane")).unwrap();
        let q_anchored = PcSubpathQuery::resolve(
            dict,
            &["book", "allauthors", "author", "fn"],
            true,
            Some("jane"),
        )
        .unwrap();
        assert_eq!(s.estimate(&q_all_fn), 3);
        assert_eq!(s.estimate(&q_jane), 2);
        assert_eq!(s.estimate(&q_anchored), 2);
        let q_title_xml =
            PcSubpathQuery::resolve(dict, &["book", "title"], true, Some("XML")).unwrap();
        // Two XML titles exist (book + chapter) but only one /book/title.
        assert_eq!(s.estimate(&q_title_xml), 1);
    }
}
