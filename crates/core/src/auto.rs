//! Cost-based strategy selection: the glue between the engine and the
//! `xtwig-opt` decision layer.
//!
//! The paper's Figs. 9–13 show the winning index configuration depends
//! on twig shape and selectivity; this module lets the engine make that
//! call per query. It measures the physical shape of every built
//! structure into an [`xtwig_opt::Catalog`], reduces a planned twig to
//! an [`xtwig_opt::TwigCostInput`], and asks the cost model to rank the
//! built strategies by estimated page reads. [`Strategy::Auto`]
//! resolves to the top of that ranking; [`QueryEngine::explain`]
//! surfaces the whole ranking for EXPLAIN output.
//!
//! Everything here works identically on a freshly built engine and on
//! one reopened from a persisted `.xtwig` file — the catalog is read
//! from the live structures (tree shapes survive reopen), and the
//! statistics come from the persisted `PathStats`, so `xtwig explain`
//! never needs to rebuild an index.

use crate::decompose::{CompiledTwig, UnknownTag};
use crate::engine::{QueryEngine, Strategy};
use crate::plan::{JoinHow, PlanKind, QueryPlan};
use std::borrow::Borrow;
use xtwig_btree::BTree;
use xtwig_opt::{
    rank, Calibration, Catalog, InljProbe, StrategyChoice, SubpathInput, TreeProfile, TwigCostInput,
};
use xtwig_xml::{TwigPattern, XmlForest};

/// [`TreeProfile`] of a live B+-tree. The profile counts *internal*
/// levels (`BTreeStats::height` counts the root-is-leaf level as 1).
pub(crate) fn tree_profile(tree: &BTree) -> TreeProfile {
    let s = tree.stats();
    TreeProfile { pages: s.pages, rows: s.entries, height: s.height.saturating_sub(1) }
}

/// The optimizer's view of one compiled query: the chosen relational
/// plan plus every built strategy ranked by estimated page reads.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The merge/INLJ plan the engine would execute.
    pub plan: QueryPlan,
    /// Built strategies, cheapest first.
    pub choices: Vec<StrategyChoice>,
}

impl Explanation {
    /// The strategy [`Strategy::Auto`] resolves to (none only when no
    /// strategy was built at all).
    pub fn chosen(&self) -> Option<Strategy> {
        self.choices.first().map(|c| c.strategy)
    }
}

impl<F: Borrow<XmlForest>> QueryEngine<F> {
    /// Measures the physical shape of every built structure — the cost
    /// model's catalog.
    pub fn catalog(&self) -> Catalog {
        Catalog {
            rp: self.rp.as_ref().map(|(i, _)| tree_profile(i.tree())),
            dp: self.dp.as_ref().map(|(i, _)| tree_profile(i.tree())),
            edge: self.edge.as_ref().map(|(e, _)| e.cost_profile()),
            dg: self.dg.as_ref().map(|(d, _)| d.cost_profile()),
            fab: self.fab.as_ref().map(|(f, _)| f.cost_profile()),
            asr: self.asr.as_ref().map(|(a, _)| a.cost_profile()),
            ji: self.ji.as_ref().map(|(j, _)| j.cost_profile()),
        }
    }

    /// Reduces a planned twig to the cost model's input: its PCsubpath
    /// cover (with the interior-ids-needed flags the engine's own
    /// execution uses), the rows expected to feed `//` stitches, and
    /// the index-nested-loop alternative when the planner chose one.
    pub fn cost_input(&self, compiled: &CompiledTwig, plan: &QueryPlan) -> TwigCostInput {
        let needed = self.needed_nodes(compiled, plan);
        let subpaths = compiled
            .subpaths
            .iter()
            .map(|sp| SubpathInput {
                tags: sp.q.tags.clone(),
                anchored: sp.q.anchored,
                value: sp.q.value.clone(),
                interior_needed: sp.nodes[..sp.nodes.len() - 1].iter().any(|n| needed.contains(n)),
            })
            .collect();

        // Rows whose ancestors a `//` stitch must recover: for each
        // ancestor-descendant join, the smaller side of the join as the
        // running result size so far (semi-joins only shrink it).
        let mut ancestor_rows = 0u64;
        let mut running = plan.steps.first().map_or(0, |s| s.estimate);
        for step in &plan.steps[1..] {
            if matches!(
                step.join,
                Some(JoinHow::AncestorOf { .. }) | Some(JoinHow::DescendantBound { .. })
            ) {
                ancestor_rows += running.min(step.estimate);
            }
            running = running.min(step.estimate);
        }

        let inlj = (plan.kind == PlanKind::IndexNestedLoop).then(|| {
            let driver_est = plan.steps[0].estimate;
            let dict = self.forest().dict();
            let probes = plan.steps[1..]
                .iter()
                .map(|step| match &step.probe {
                    Some(p) => {
                        // Mirrors choose_plan's INLJ costing: one probe
                        // per distinct head binding.
                        let n_anchor = dict
                            .lookup(&compiled.twig.nodes[p.anchor].tag)
                            .map(|t| self.stats().tag_count(t))
                            .unwrap_or(1)
                            .max(1);
                        let heads = driver_est.min(n_anchor).max(1);
                        InljProbe { heads, rows: (heads * step.estimate) / n_anchor }
                    }
                    // Probe-less steps run as free lookups even under
                    // an INLJ plan.
                    None => InljProbe { heads: 1, rows: step.estimate },
                })
                .collect();
            (plan.steps[0].subpath, probes)
        });

        TwigCostInput { subpaths, ancestor_rows, inlj }
    }

    /// Ranks every built strategy for an already-compiled twig,
    /// cheapest estimated page reads first.
    pub fn rank_strategies(
        &self,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
    ) -> Vec<StrategyChoice> {
        rank(
            self.stats(),
            &self.catalog(),
            &self.cost_input(compiled, plan),
            &Calibration::default(),
        )
    }

    /// Resolves [`Strategy::Auto`] to the cheapest built configuration
    /// for this query; concrete strategies pass through unchanged.
    ///
    /// # Panics
    /// Panics when `strategy` is `Auto` and no strategy was built
    /// (parallel to the engine's unbuilt-strategy panics; services
    /// check [`QueryEngine::has_strategy`] up front).
    pub fn resolve_strategy(
        &self,
        strategy: Strategy,
        compiled: &CompiledTwig,
        plan: &QueryPlan,
    ) -> Strategy {
        if !strategy.is_auto() {
            return strategy;
        }
        self.rank_strategies(compiled, plan)
            .first()
            .map(|c| c.strategy)
            .expect("Strategy::Auto requires at least one built configuration")
    }

    /// Compiles `twig` and ranks every built strategy — the data behind
    /// `xtwig explain`. Works on reopened `.xtwig` indexes without any
    /// rebuild (statistics and tree shapes are persisted).
    pub fn explain(&self, twig: &TwigPattern) -> Result<Explanation, UnknownTag> {
        let (compiled, plan) = self.compile(twig)?;
        let choices = self.rank_strategies(&compiled, &plan);
        Ok(Explanation { plan, choices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::parse_xpath;
    use std::collections::BTreeSet;
    use xtwig_xml::naive;
    use xtwig_xml::tree::fig1_book_document;

    fn engine(forest: &XmlForest) -> QueryEngine<&XmlForest> {
        QueryEngine::build(forest, EngineOptions { pool_pages: 1024, ..Default::default() })
    }

    #[test]
    fn catalog_covers_built_strategies_only() {
        let f = fig1_book_document();
        let full = engine(&f).catalog();
        for s in Strategy::ALL {
            assert!(full.has(s), "{s}");
        }
        assert!(full.has(Strategy::Auto));
        let rp_only = QueryEngine::build(
            &f,
            EngineOptions {
                strategies: vec![Strategy::RootPaths],
                pool_pages: 1024,
                ..Default::default()
            },
        )
        .catalog();
        assert!(rp_only.has(Strategy::RootPaths));
        assert!(!rp_only.has(Strategy::Edge));
        assert!(!rp_only.has(Strategy::DataGuideEdge));
        assert!(rp_only.has(Strategy::Auto));
    }

    #[test]
    fn rank_is_sorted_and_complete() {
        let f = fig1_book_document();
        let e = engine(&f);
        let twig = parse_xpath("/book[title='XML']//author[fn='jane'][ln='doe']").unwrap();
        let (compiled, plan) = e.compile(&twig).unwrap();
        let choices = e.rank_strategies(&compiled, &plan);
        assert_eq!(choices.len(), Strategy::ALL.len());
        assert!(choices.windows(2).all(|w| w[0].est_page_reads <= w[1].est_page_reads));
        assert!(choices.iter().all(|c| c.est_page_reads.is_finite()));
    }

    #[test]
    fn auto_answers_match_every_concrete_strategy() {
        let f = fig1_book_document();
        let e = engine(&f);
        for q in [
            "/book/title[. = 'XML']",
            "//author[fn = 'jane'][ln = 'doe']",
            "/book[title = 'XML']//section/head",
            "//chapter[title = 'XML']/section/head",
            "//title",
        ] {
            let twig = parse_xpath(q).unwrap();
            let expected: BTreeSet<u64> =
                naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
            let auto = e.answer(&twig, Strategy::Auto);
            assert_eq!(auto.ids, expected, "auto wrong on {q}");
            assert!(!auto.strategy.is_auto(), "answer must report the concrete pick");
            for s in Strategy::ALL {
                let concrete = e.answer(&twig, s);
                assert_eq!(concrete.ids, expected, "{s} wrong on {q}");
                assert_eq!(concrete.strategy, s);
            }
        }
    }

    #[test]
    fn resolve_strategy_passes_concrete_through() {
        let f = fig1_book_document();
        let e = engine(&f);
        let twig = parse_xpath("//author/fn").unwrap();
        let (compiled, plan) = e.compile(&twig).unwrap();
        for s in Strategy::ALL {
            assert_eq!(e.resolve_strategy(s, &compiled, &plan), s);
        }
        let pick = e.resolve_strategy(Strategy::Auto, &compiled, &plan);
        assert!(Strategy::ALL.contains(&pick));
        assert_eq!(pick, e.explain(&twig).unwrap().chosen().unwrap());
    }

    #[test]
    fn auto_resolves_within_the_built_subset() {
        let f = fig1_book_document();
        let e = QueryEngine::build(
            &f,
            EngineOptions {
                strategies: vec![Strategy::Edge, Strategy::Asr],
                pool_pages: 1024,
                ..Default::default()
            },
        );
        let twig = parse_xpath("//author[fn = 'jane']").unwrap();
        let a = e.answer(&twig, Strategy::Auto);
        assert!(matches!(a.strategy, Strategy::Edge | Strategy::Asr));
        let expected: BTreeSet<u64> = naive::select(&f, &twig).into_iter().map(|n| n.0).collect();
        assert_eq!(a.ids, expected);
    }

    #[test]
    fn unknown_tag_under_auto_is_empty_without_resolution() {
        let f = fig1_book_document();
        let e = engine(&f);
        let twig = parse_xpath("//unknown_tag_never_seen").unwrap();
        let a = e.answer(&twig, Strategy::Auto);
        assert!(a.ids.is_empty());
        assert_eq!(a.strategy, Strategy::Auto, "nothing executed, nothing resolved");
    }

    #[test]
    fn explain_prefers_single_probe_strategies_for_valued_paths() {
        // Fig. 11's lesson: a fully-specified valued path should land
        // on a single-probe strategy (RP or IF+Edge), not the Edge
        // chain.
        let f = fig1_book_document();
        let e = engine(&f);
        let twig = parse_xpath("/book/allauthors/author/fn[. = 'jane']").unwrap();
        let ex = e.explain(&twig).unwrap();
        let chosen = ex.chosen().unwrap();
        assert!(
            matches!(chosen, Strategy::RootPaths | Strategy::IndexFabricEdge),
            "chose {chosen}"
        );
        let edge_cost =
            ex.choices.iter().find(|c| c.strategy == Strategy::Edge).unwrap().est_page_reads;
        assert!(ex.choices[0].est_page_reads <= edge_cost);
    }
}
