//! XML serialization of forest subtrees.
//!
//! Used by the data generators to emit on-disk datasets and by tests for
//! parse/serialize round-trips. Values are re-escaped so that
//! `parse(serialize(f))` reproduces `f` node-for-node (modulo the
//! placement of mixed-content text, which this model attaches to the
//! owning element).

use crate::tree::{NodeId, NodeKind, XmlForest};
use std::fmt::Write;

/// Serializes the subtree rooted at `root` to an XML string.
pub fn serialize_subtree(forest: &XmlForest, root: NodeId) -> String {
    let mut out = String::new();
    write_node(forest, root, &mut out, 0, false);
    out
}

/// Serializes the subtree rooted at `root` with two-space indentation.
pub fn serialize_pretty(forest: &XmlForest, root: NodeId) -> String {
    let mut out = String::new();
    write_node(forest, root, &mut out, 0, true);
    out
}

/// Serializes every document in the forest, concatenated with newlines.
pub fn serialize_forest(forest: &XmlForest) -> String {
    let mut out = String::new();
    for &root in forest.roots() {
        write_node(forest, root, &mut out, 0, false);
        out.push('\n');
    }
    out
}

fn write_node(forest: &XmlForest, id: NodeId, out: &mut String, indent: usize, pretty: bool) {
    if pretty {
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
    let name = forest.tag_name(id);
    out.push('<');
    out.push_str(name);
    let mut element_children = Vec::new();
    for child in forest.children(id) {
        match forest.kind(child) {
            NodeKind::Attribute => {
                let aname = &forest.tag_name(child)[1..]; // strip '@'
                let _ = write!(
                    out,
                    " {}=\"{}\"",
                    aname,
                    escape_attr(forest.value_str(child).unwrap_or(""))
                );
            }
            NodeKind::Element => element_children.push(child),
        }
    }
    let text = forest.value_str(id);
    if element_children.is_empty() && text.is_none() {
        out.push_str("/>");
        if pretty {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    if let Some(t) = text {
        out.push_str(&escape_text(t));
    }
    if !element_children.is_empty() {
        if pretty {
            out.push('\n');
        }
        for child in element_children {
            write_node(forest, child, out, indent + 1, pretty);
        }
        if pretty {
            for _ in 0..indent {
                out.push_str("  ");
            }
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
    if pretty {
        out.push('\n');
    }
}

/// Escapes text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value (double-quoted context).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::tree::XmlForest;

    fn roundtrip(input: &str) {
        let mut f1 = XmlForest::new();
        let r1 = parse_document(&mut f1, input).unwrap();
        let text = serialize_subtree(&f1, r1);
        let mut f2 = XmlForest::new();
        let r2 = parse_document(&mut f2, &text).unwrap();
        // Structural equality: same tag/value/kind sequence in pre-order.
        let n1: Vec<_> = f1.iter_subtree(r1).collect();
        let n2: Vec<_> = f2.iter_subtree(r2).collect();
        assert_eq!(n1.len(), n2.len(), "node counts differ for {input:?} -> {text:?}");
        for (&a, &b) in n1.iter().zip(&n2) {
            assert_eq!(f1.tag_name(a), f2.tag_name(b));
            assert_eq!(f1.value_str(a), f2.value_str(b));
            assert_eq!(f1.kind(a), f2.kind(b));
            assert_eq!(f1.depth(a), f2.depth(b));
        }
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("<book><title>XML</title></book>");
    }

    #[test]
    fn roundtrip_attributes() {
        roundtrip(r#"<a x="1" y="2&quot;3"><b z="&lt;"/></a>"#);
    }

    #[test]
    fn roundtrip_escapes() {
        roundtrip("<a>1 &lt; 2 &amp; 3 &gt; 2</a>");
    }

    #[test]
    fn roundtrip_empty_elements() {
        roundtrip("<a><b/><c></c><d>x</d></a>");
    }

    #[test]
    fn roundtrip_paper_fig1() {
        let f = crate::tree::fig1_book_document();
        let text = serialize_subtree(&f, f.roots()[0]);
        let mut f2 = XmlForest::new();
        let r2 = parse_document(&mut f2, &text).unwrap();
        assert_eq!(f.iter_subtree(f.roots()[0]).count(), f2.iter_subtree(r2).count());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let f = crate::tree::fig1_book_document();
        let text = serialize_pretty(&f, f.roots()[0]);
        assert!(text.contains('\n'));
        let mut f2 = XmlForest::new();
        parse_document(&mut f2, &text).unwrap();
    }
}
