//! Tag and attribute-name dictionary.
//!
//! Schema paths are "dictionary-encoded using special characters (whose
//! lengths depend on the dictionary size) as designators for the schema
//! components" (paper §3.1). This module owns the mapping between textual
//! tag/attribute names and compact numeric [`TagId`]s; the byte-level
//! designator encoding used inside B+-tree keys lives in `xtwig-core`.
//!
//! Attribute names are stored with a leading `'@'` so that an element
//! `income` and an attribute `@income` are distinct schema components, as
//! they are in the paper's queries (e.g. `profile/@income`).

use std::collections::HashMap;
use std::fmt;

/// Compact identifier for a tag or attribute name.
///
/// `TagId(0)` is reserved for the virtual root that parents all documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl TagId {
    /// The reserved tag of the virtual root node.
    pub const VIRTUAL_ROOT: TagId = TagId(0);

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Interning dictionary from tag/attribute names to [`TagId`]s.
///
/// The dictionary is append-only: ids are stable for the lifetime of the
/// forest, which is what allows them to be persisted inside index keys.
#[derive(Debug, Clone)]
pub struct TagDict {
    names: Vec<String>,
    map: HashMap<String, TagId>,
}

impl Default for TagDict {
    fn default() -> Self {
        Self::new()
    }
}

impl TagDict {
    /// Creates a dictionary containing only the reserved virtual-root tag.
    pub fn new() -> Self {
        let mut dict = TagDict { names: Vec::new(), map: HashMap::new() };
        let id = dict.intern("<virtual-root>");
        debug_assert_eq!(id, TagId::VIRTUAL_ROOT);
        dict
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = TagId(u32::try_from(self.names.len()).expect("tag dictionary overflow"));
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        id
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<TagId> {
        self.map.get(name).copied()
    }

    /// Returns the name for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names, including the reserved virtual-root tag.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the reserved virtual-root tag is present.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates `(TagId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (TagId(i as u32), n.as_str()))
    }

    /// Approximate heap footprint in bytes, used when sizing the
    /// tag-translation table (the paper assumes it "can fit in a single
    /// page"; this lets tests check that assumption at bench scales).
    pub fn approx_bytes(&self) -> usize {
        self.names.iter().map(|n| n.len() + 8).sum::<usize>() * 2
    }
}

/// Interning dictionary for leaf values.
///
/// Leaf values are strings (paper §2.1: "we assume all values are strings
/// and only equality matches on the values are allowed"). Interning keeps
/// the in-memory forest compact when values repeat heavily, as they do in
/// both XMark (e.g. `united states`) and DBLP (years).
#[derive(Debug, Clone, Default)]
pub struct ValueInterner {
    values: Vec<String>,
    map: HashMap<String, SymbolId>,
}

/// Compact identifier for an interned leaf value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ValueInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its symbol.
    pub fn intern(&mut self, value: &str) -> SymbolId {
        if let Some(&id) = self.map.get(value) {
            return id;
        }
        let id = SymbolId(u32::try_from(self.values.len()).expect("value interner overflow"));
        self.values.push(value.to_owned());
        self.map.insert(value.to_owned(), id);
        id
    }

    /// Looks up a value without interning it.
    pub fn lookup(&self, value: &str) -> Option<SymbolId> {
        self.map.get(value).copied()
    }

    /// Returns the string for `sym`.
    pub fn value(&self, sym: SymbolId) -> &str {
        &self.values[sym.index()]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_dict_reserves_virtual_root() {
        let dict = TagDict::new();
        assert_eq!(dict.len(), 1);
        assert!(dict.is_empty());
        assert_eq!(dict.name(TagId::VIRTUAL_ROOT), "<virtual-root>");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut dict = TagDict::new();
        let a = dict.intern("book");
        let b = dict.intern("title");
        let a2 = dict.intern("book");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.name(a), "book");
        assert_eq!(dict.name(b), "title");
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut dict = TagDict::new();
        assert_eq!(dict.lookup("book"), None);
        let id = dict.intern("book");
        assert_eq!(dict.lookup("book"), Some(id));
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn attribute_names_are_distinct_components() {
        let mut dict = TagDict::new();
        let elem = dict.intern("income");
        let attr = dict.intern("@income");
        assert_ne!(elem, attr);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut dict = TagDict::new();
        dict.intern("a");
        dict.intern("b");
        let collected: Vec<_> = dict.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![(0, "<virtual-root>".to_owned()), (1, "a".to_owned()), (2, "b".to_owned())]
        );
    }

    #[test]
    fn value_interner_roundtrip() {
        let mut vi = ValueInterner::new();
        let jane = vi.intern("jane");
        let doe = vi.intern("doe");
        assert_eq!(vi.intern("jane"), jane);
        assert_eq!(vi.value(jane), "jane");
        assert_eq!(vi.value(doe), "doe");
        assert_eq!(vi.lookup("poe"), None);
        assert_eq!(vi.len(), 2);
    }

    #[test]
    fn value_interner_distinguishes_case_and_whitespace() {
        let mut vi = ValueInterner::new();
        let a = vi.intern("United States");
        let b = vi.intern("united states");
        let c = vi.intern("united states ");
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn dict_size_fits_in_a_page_at_paper_scales() {
        // Paper §5.1.1: "the translation table can fit in a single page".
        // XMark has well under 100 distinct tags.
        let mut dict = TagDict::new();
        for i in 0..90 {
            dict.intern(&format!("tag_name_{i}"));
        }
        assert!(dict.approx_bytes() < 8192);
    }
}
