//! Binary forest snapshots.
//!
//! A persisted index file must carry the forest it was built over: query
//! compilation resolves tag names through the forest's dictionary, long
//! values are rechecked against the base data, and `//` stitching can
//! fall back to base-tree ancestor walks. Re-parsing XML on every open
//! would be rebuild work; this module instead serializes the forest's
//! arena directly — dictionary, value interner, and one fixed-width
//! record per node — and reconstructs it with a linear replay through
//! [`TreeBuilder`](crate::tree::TreeBuilder), which re-derives every invariant (children lists,
//! depths, subtree ends) the arena maintains.
//!
//! The replay pre-interns both symbol tables in stored order, so
//! reconstructed [`TagId`]/`SymbolId` values are **identical** to the
//! originals — required because persisted index keys embed tag ids.

use crate::dictionary::TagId;
use crate::tree::{NodeId, NodeKind, XmlForest};
use std::fmt;

/// Snapshot format version (bumped on any layout change).
pub const SNAPSHOT_VERSION: u8 = 1;

const MAGIC: &[u8; 4] = b"XFOR";
const NO_VALUE: u32 = u32::MAX;

/// A malformed or truncated snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "forest snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError(msg.into()))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, u32::try_from(s.len()).expect("string too long"));
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return err(format!("truncated at byte {} (wanted {n} more)", self.pos));
        };
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        match std::str::from_utf8(b) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => err("non-UTF-8 string"),
        }
    }
}

impl XmlForest {
    /// Serializes the forest to a compact binary snapshot.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let n = self.node_count();
        let mut out = Vec::with_capacity(32 + n * 13);
        out.extend_from_slice(MAGIC);
        out.push(SNAPSHOT_VERSION);
        // Both symbol tables in id order, so replay re-interning
        // reproduces the exact same ids.
        push_u32(&mut out, self.dict().len() as u32);
        for (_, name) in self.dict().iter() {
            push_str(&mut out, name);
        }
        push_u32(&mut out, self.values().len() as u32);
        for i in 0..self.values().len() {
            push_str(&mut out, self.values().value(crate::dictionary::SymbolId(i as u32)));
        }
        // The arena already bounds node ids to u32 (see `push_node`);
        // fail loudly rather than wrap if that ever changes.
        push_u32(&mut out, u32::try_from(n).expect("forest too large for snapshot"));
        for i in 1..n as u64 {
            let id = NodeId(i);
            push_u32(&mut out, self.tag(id).0);
            out.push(match self.kind(id) {
                NodeKind::Element => 0,
                NodeKind::Attribute => 1,
            });
            let parent = self.parent(id).expect("non-root has a parent").0;
            push_u32(&mut out, u32::try_from(parent).expect("parent id exceeds u32"));
            push_u32(&mut out, self.value(id).map_or(NO_VALUE, |s| s.0));
        }
        out
    }

    /// Reconstructs a forest from [`XmlForest::to_snapshot`] bytes.
    ///
    /// The snapshot is replayed through [`TreeBuilder`] in pre-order, so
    /// every arena invariant (children lists, depths, subtree ends) is
    /// re-derived rather than trusted; malformed input is rejected with
    /// an error instead of producing a broken forest.
    ///
    /// [`TreeBuilder`]: crate::tree::TreeBuilder
    pub fn from_snapshot(bytes: &[u8]) -> Result<XmlForest, SnapshotError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return err("bad magic (not a forest snapshot)");
        }
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return err(format!("snapshot version {version} (expected {SNAPSHOT_VERSION})"));
        }
        let mut forest = XmlForest::new();
        let dict_len = r.u32()? as usize;
        if dict_len == 0 {
            return err("empty dictionary (virtual root tag missing)");
        }
        // The tables are kept locally too: the replay below resolves
        // names/values through them while a `TreeBuilder` holds the
        // forest mutably. Capacities are capped: the counts are
        // untrusted until the reads below bound them, and a corrupt
        // length field must produce an error, not a huge allocation.
        let mut names = Vec::with_capacity(dict_len.min(1 << 16));
        for i in 0..dict_len {
            let name = r.str()?;
            if i == 0 {
                if forest.dict().name(TagId::VIRTUAL_ROOT) != name {
                    return err("dictionary slot 0 is not the virtual-root tag");
                }
            } else {
                let id = forest.dict_mut().intern(&name);
                if id.0 as usize != i {
                    return err(format!("duplicate dictionary entry {name:?} at slot {i}"));
                }
            }
            names.push(name);
        }
        let value_len = r.u32()? as usize;
        let mut values = Vec::with_capacity(value_len.min(1 << 16));
        for i in 0..value_len {
            let v = r.str()?;
            let id = forest.values_mut().intern(&v);
            if id.0 as usize != i {
                return err(format!("duplicate value-interner entry at slot {i}"));
            }
            values.push(v);
        }
        let node_count = r.u32()? as usize;
        if node_count == 0 {
            return err("node count 0 (virtual root missing)");
        }

        struct Node {
            tag: u32,
            kind: u8,
            parent: u32,
            value: u32,
        }
        let mut nodes = Vec::with_capacity((node_count - 1).min(1 << 20));
        for i in 1..node_count {
            let node = Node { tag: r.u32()?, kind: r.u8()?, parent: r.u32()?, value: r.u32()? };
            if node.tag as usize >= dict_len {
                return err(format!("node {i}: tag {} out of range", node.tag));
            }
            if node.kind > 1 {
                return err(format!("node {i}: unknown kind {}", node.kind));
            }
            if node.parent as usize >= i {
                return err(format!("node {i}: parent {} is not an earlier node", node.parent));
            }
            if node.value != NO_VALUE && node.value as usize >= value_len {
                return err(format!("node {i}: value symbol {} out of range", node.value));
            }
            if node.kind == 1 && node.value == NO_VALUE {
                return err(format!("node {i}: attribute without a value"));
            }
            if node.kind == 1 && node.parent == 0 {
                return err(format!("node {i}: attribute as a document root"));
            }
            nodes.push(node);
        }
        if r.pos != bytes.len() {
            return err(format!("{} trailing byte(s) after the node table", bytes.len() - r.pos));
        }

        // Pre-order replay. `stack` mirrors the builder's open-element
        // stack with node ids; `has_element_child` guards the builder's
        // attributes-before-elements invariant so corrupt input errors
        // instead of panicking inside the builder.
        let mut i = 0usize; // index into `nodes` (node id = i + 1)
        while i < nodes.len() {
            if nodes[i].parent != 0 {
                return err(format!(
                    "node {}: document root with parent {}",
                    i + 1,
                    nodes[i].parent
                ));
            }
            let mut b = forest.builder();
            let mut stack: Vec<u32> = Vec::new();
            let mut has_element_child: Vec<bool> = Vec::new();
            while let Some(node) = nodes.get(i) {
                if node.parent == 0 && !stack.is_empty() {
                    break; // next document
                }
                while stack.last().is_some_and(|&top| top != node.parent) {
                    b.close();
                    stack.pop();
                    has_element_child.pop();
                }
                if stack.is_empty() && node.parent != 0 {
                    return err(format!(
                        "node {}: parent {} is not an open ancestor (not pre-order)",
                        i + 1,
                        node.parent
                    ));
                }
                let id = i as u32 + 1;
                let name = &names[node.tag as usize];
                if node.kind == 1 {
                    if *has_element_child.last().unwrap_or(&false) {
                        return err(format!("node {id}: attribute after an element sibling"));
                    }
                    let got = b.attr(name, &values[node.value as usize]);
                    if got != NodeId(u64::from(id)) {
                        return err(format!("node {id}: replay assigned id {got}"));
                    }
                } else {
                    if let Some(top) = has_element_child.last_mut() {
                        *top = true;
                    }
                    let value =
                        (node.value != NO_VALUE).then(|| values[node.value as usize].as_str());
                    // Attribute tags carry a leading '@'; an element
                    // with such a tag would silently become an
                    // attribute-name collision on replay.
                    if name.starts_with('@') {
                        return err(format!(
                            "node {id}: element with attribute-style tag {name:?}"
                        ));
                    }
                    let got = b.open(name);
                    if got != NodeId(u64::from(id)) {
                        return err(format!("node {id}: replay assigned id {got}"));
                    }
                    if let Some(v) = value {
                        b.text(v);
                    }
                    stack.push(id);
                    has_element_child.push(false);
                }
                i += 1;
            }
            while !stack.is_empty() {
                b.close();
                stack.pop();
            }
            b.finish();
        }
        Ok(forest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::fig1_book_document;

    fn assert_forests_equal(a: &XmlForest, b: &XmlForest) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.roots(), b.roots());
        assert_eq!(a.dict().len(), b.dict().len());
        assert_eq!(a.values().len(), b.values().len());
        for id in a.iter_nodes() {
            assert_eq!(a.tag(id), b.tag(id), "tag of {id}");
            assert_eq!(a.kind(id), b.kind(id), "kind of {id}");
            assert_eq!(a.parent(id), b.parent(id), "parent of {id}");
            assert_eq!(a.value(id), b.value(id), "value symbol of {id}");
            assert_eq!(a.value_str(id), b.value_str(id), "value of {id}");
            assert_eq!(a.depth(id), b.depth(id), "depth of {id}");
            assert_eq!(a.subtree_end(id), b.subtree_end(id), "subtree end of {id}");
            assert_eq!(
                a.children(id).collect::<Vec<_>>(),
                b.children(id).collect::<Vec<_>>(),
                "children of {id}"
            );
        }
    }

    #[test]
    fn fig1_roundtrip_is_identical() {
        let f = fig1_book_document();
        let snap = f.to_snapshot();
        let g = XmlForest::from_snapshot(&snap).unwrap();
        assert_forests_equal(&f, &g);
        // And the roundtrip is a fixed point.
        assert_eq!(g.to_snapshot(), snap);
    }

    #[test]
    fn multi_document_forest_with_attributes_roundtrips() {
        let mut f = XmlForest::new();
        for i in 0..3 {
            let mut b = f.builder();
            b.open("item");
            b.attr("id", &format!("i{i}"));
            b.attr("@featured", "yes");
            b.leaf("name", "widget");
            b.open("nested");
            b.leaf("price", &format!("{i}"));
            b.close();
            b.close();
            b.finish();
        }
        let g = XmlForest::from_snapshot(&f.to_snapshot()).unwrap();
        assert_forests_equal(&f, &g);
    }

    #[test]
    fn empty_forest_roundtrips() {
        let f = XmlForest::new();
        let g = XmlForest::from_snapshot(&f.to_snapshot()).unwrap();
        assert_forests_equal(&f, &g);
    }

    #[test]
    fn interned_but_unused_symbols_survive() {
        // `text` called incrementally interns intermediate strings that
        // no node ends up referencing; symbol ids must still line up.
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("doc");
        b.open("p");
        b.text("hello ");
        b.text("world");
        b.close();
        b.close();
        b.finish();
        // Also tags interned by a query compiler but absent from data.
        f.dict_mut().intern("query-only-tag");
        let g = XmlForest::from_snapshot(&f.to_snapshot()).unwrap();
        assert_forests_equal(&f, &g);
        assert_eq!(g.dict().lookup("query-only-tag"), f.dict().lookup("query-only-tag"));
        assert_eq!(g.values().lookup("hello "), f.values().lookup("hello "));
    }

    #[test]
    fn corrupt_snapshots_error_instead_of_panicking() {
        let f = fig1_book_document();
        let snap = f.to_snapshot();
        // Bad magic.
        let mut bad = snap.clone();
        bad[0] = b'Z';
        assert!(XmlForest::from_snapshot(&bad).unwrap_err().0.contains("magic"));
        // Bad version.
        let mut bad = snap.clone();
        bad[4] = 99;
        assert!(XmlForest::from_snapshot(&bad).unwrap_err().0.contains("version"));
        // Truncations at every prefix length must error, never panic.
        for cut in 0..snap.len() {
            assert!(XmlForest::from_snapshot(&snap[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut bad = snap.clone();
        bad.push(0);
        assert!(XmlForest::from_snapshot(&bad).unwrap_err().0.contains("trailing"));
        // A huge declared count in a tiny input must error cheaply,
        // not attempt a giant allocation: dict_len = u32::MAX.
        let bomb = [b'X', b'F', b'O', b'R', 1, 0xFF, 0xFF, 0xFF, 0xFF];
        assert!(XmlForest::from_snapshot(&bomb).unwrap_err().0.contains("truncated"));
    }

    #[test]
    fn snapshot_is_deterministic() {
        let f = fig1_book_document();
        assert_eq!(f.to_snapshot(), fig1_book_document().to_snapshot());
    }
}
