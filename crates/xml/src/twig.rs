//! Query twig patterns (paper §2.1, Fig. 1(c)).
//!
//! A twig is a node-labeled tree: node labels are element tags, attribute
//! names (with a leading `'@'`), and optional string values; edges are
//! parent-child (single line in the paper's figures) or
//! ancestor-descendant (double line). The pattern root attaches to the
//! document root with one of the same two axes: `/book` anchors `book` as
//! a document root, `//author` matches authors at any depth.
//!
//! Value predicates are stored directly on the twig node they apply to
//! (the paper's value leaves carry no ids — see Fig. 2 — so modelling them
//! as node attributes loses nothing and keeps match tuples aligned with
//! element/attribute ids only).

use std::fmt;

/// Structural relationship of an edge (or of the root to the document).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Parent-child (`/`).
    Child,
    /// Ancestor-descendant (`//`), unbounded depth, proper descendant.
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// One node of a twig pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigNode {
    /// Tag or attribute name (attributes carry the leading `'@'`).
    pub tag: String,
    /// Optional equality predicate on this node's leaf value.
    pub value: Option<String>,
    /// Outgoing edges: `(axis, child index into TwigPattern::nodes)`.
    pub children: Vec<(Axis, usize)>,
}

/// A query twig pattern.
///
/// Node 0 is the pattern root. `output` designates the node whose matches
/// constitute the query result (XPath's last location step outside
/// predicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigPattern {
    /// Pattern nodes; index 0 is the root.
    pub nodes: Vec<TwigNode>,
    /// How the pattern root relates to document roots.
    pub root_axis: Axis,
    /// Index of the result node.
    pub output: usize,
}

impl TwigPattern {
    /// Creates a single-node pattern.
    pub fn single(root_axis: Axis, tag: &str, value: Option<&str>) -> Self {
        TwigPattern {
            nodes: vec![TwigNode {
                tag: tag.to_owned(),
                value: value.map(str::to_owned),
                children: Vec::new(),
            }],
            root_axis,
            output: 0,
        }
    }

    /// Appends a node under `parent`, returning its index.
    pub fn add_child(
        &mut self,
        parent: usize,
        axis: Axis,
        tag: &str,
        value: Option<&str>,
    ) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(TwigNode {
            tag: tag.to_owned(),
            value: value.map(str::to_owned),
            children: Vec::new(),
        });
        self.nodes[parent].children.push((axis, idx));
        idx
    }

    /// Builds a pure (branchless) path pattern from `(axis, tag)` steps,
    /// with an optional value predicate on the final step. The output node
    /// is the last step.
    pub fn path(steps: &[(Axis, &str)], value: Option<&str>) -> Self {
        assert!(!steps.is_empty(), "empty path pattern");
        let mut twig = TwigPattern::single(steps[0].0, steps[0].1, None);
        let mut cur = 0;
        for &(axis, tag) in &steps[1..] {
            cur = twig.add_child(cur, axis, tag, None);
        }
        twig.nodes[cur].value = value.map(str::to_owned);
        twig.output = cur;
        twig
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a pattern with no nodes (never produced by constructors).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Parent (and incoming axis) of node `idx`; `None` for the root.
    pub fn parent_of(&self, idx: usize) -> Option<(Axis, usize)> {
        for (p, node) in self.nodes.iter().enumerate() {
            for &(axis, c) in &node.children {
                if c == idx {
                    return Some((axis, p));
                }
            }
        }
        None
    }

    /// True if the pattern is a single path (every node has at most one
    /// child) with only `Child` edges after the root axis — i.e., a
    /// PCsubpath pattern per §2.2 (a leading `//` is permitted).
    pub fn is_pc_path(&self) -> bool {
        let mut cur = 0;
        loop {
            match self.nodes[cur].children.len() {
                0 => return true,
                1 => {
                    let (axis, next) = self.nodes[cur].children[0];
                    if axis != Axis::Child {
                        return false;
                    }
                    cur = next;
                }
                _ => return false,
            }
        }
    }

    /// True if any edge (including the root axis) is `Descendant`.
    pub fn has_recursion(&self) -> bool {
        self.root_axis == Axis::Descendant
            || self.nodes.iter().any(|n| n.children.iter().any(|&(a, _)| a == Axis::Descendant))
    }

    /// Number of leaf branches (nodes without children).
    pub fn branch_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Indices of branching nodes (more than one child).
    pub fn branch_points(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].children.len() > 1).collect()
    }

    /// Depth-first pre-order of pattern node indices starting at the root.
    pub fn preorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0usize];
        while let Some(n) = stack.pop() {
            order.push(n);
            for &(_, c) in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    fn fmt_node(&self, idx: usize, out: &mut String) {
        let node = &self.nodes[idx];
        out.push_str(&node.tag);
        if let Some(v) = &node.value {
            out.push_str(&format!("[. = '{v}']"));
        }
        match node.children.len() {
            0 => {}
            1 => {
                let (axis, c) = node.children[0];
                out.push_str(&axis.to_string());
                self.fmt_node(c, out);
            }
            _ => {
                for &(axis, c) in &node.children {
                    out.push('[');
                    if axis == Axis::Descendant {
                        out.push('/');
                    }
                    // Relative paths inside predicates never start with '/'.
                    let mut inner = String::new();
                    self.fmt_node(c, &mut inner);
                    if axis == Axis::Descendant {
                        out.push('/');
                    }
                    out.push_str(&inner);
                    out.push(']');
                }
            }
        }
    }
}

impl fmt::Display for TwigPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        out.push_str(&self.root_axis.to_string());
        self.fmt_node(0, &mut out);
        write!(f, "{out}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: /book[title='XML']//author[fn='jane'][ln='doe']
    pub(crate) fn paper_twig() -> TwigPattern {
        let mut twig = TwigPattern::single(Axis::Child, "book", None);
        let title = twig.add_child(0, Axis::Child, "title", Some("XML"));
        let author = twig.add_child(0, Axis::Descendant, "author", None);
        twig.add_child(author, Axis::Child, "fn", Some("jane"));
        twig.add_child(author, Axis::Child, "ln", Some("doe"));
        twig.output = author;
        let _ = title;
        twig
    }

    #[test]
    fn paper_twig_shape() {
        let t = paper_twig();
        assert_eq!(t.len(), 5);
        assert_eq!(t.branch_count(), 3); // title, fn, ln leaves
        assert_eq!(t.branch_points(), vec![0, 2]); // book and author branch
        assert!(t.has_recursion());
        assert!(!t.is_pc_path());
    }

    #[test]
    fn path_constructor_builds_pc_paths() {
        let p = TwigPattern::path(
            &[(Axis::Child, "book"), (Axis::Child, "allauthors"), (Axis::Child, "author")],
            None,
        );
        assert!(p.is_pc_path());
        assert!(!p.has_recursion());
        assert_eq!(p.output, 2);
        assert_eq!(p.branch_count(), 1);
    }

    #[test]
    fn leading_descendant_is_still_pc_path() {
        // §2.2: "a '//' at the beginning of a subpath pattern is permitted".
        let p =
            TwigPattern::path(&[(Axis::Descendant, "author"), (Axis::Child, "fn")], Some("jane"));
        assert!(p.is_pc_path());
        assert!(p.has_recursion());
    }

    #[test]
    fn internal_descendant_is_not_pc_path() {
        let p = TwigPattern::path(&[(Axis::Child, "book"), (Axis::Descendant, "author")], None);
        assert!(!p.is_pc_path());
    }

    #[test]
    fn parent_of_finds_incoming_edge() {
        let t = paper_twig();
        assert_eq!(t.parent_of(0), None);
        assert_eq!(t.parent_of(1), Some((Axis::Child, 0)));
        assert_eq!(t.parent_of(2), Some((Axis::Descendant, 0)));
        assert_eq!(t.parent_of(3), Some((Axis::Child, 2)));
    }

    #[test]
    fn preorder_visits_all_nodes_root_first() {
        let t = paper_twig();
        let order = t.preorder();
        assert_eq!(order.len(), t.len());
        assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..t.len()).collect::<Vec<_>>());
    }

    #[test]
    fn display_roundtrips_visually() {
        let t = paper_twig();
        let s = t.to_string();
        assert!(s.starts_with("/book"), "{s}");
        assert!(s.contains("title"), "{s}");
        assert!(s.contains("jane"), "{s}");
    }
}
