//! Arena-based XML forest with pre-order node identifiers.
//!
//! The forest mirrors the paper's data model (§2.1): rooted, ordered,
//! labeled trees whose non-leaf nodes are elements and attributes. Leaf
//! string values are stored as an optional interned value on their owning
//! element/attribute node — exactly the information content of the paper's
//! value leaves, without materializing a separate node (value leaves carry
//! no ids in the paper: see Fig. 2, where `BUAF jane` and `BUAF null` share
//! the IdList `[5,6,7]`).
//!
//! Node ids are assigned in document order (pre-order, "depth-first
//! numbering", paper §4.1), so ids strictly increase along any downward
//! path — the property that makes differential IdList encoding effective.
//! Id 0 is a virtual root that parents every document (paper footnote 4),
//! letting DATAPATHS answer FreeIndex probes.

pub use crate::dictionary::SymbolId;
use crate::dictionary::{TagDict, TagId, ValueInterner};

/// Identifier of an element or attribute node: its pre-order rank in the
/// forest (0 = virtual root, documents numbered in insertion order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The virtual root that parents all document roots.
    pub const VIRTUAL_ROOT: NodeId = NodeId(0);

    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Whether a node is an element or an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node (`<tag>`).
    Element,
    /// An attribute node; its tag name carries a leading `'@'`.
    Attribute,
}

#[derive(Debug, Clone)]
struct NodeData {
    tag: TagId,
    kind: NodeKind,
    parent: u32,
    /// Pre-order index of the last node in this node's subtree (inclusive).
    subtree_end: u32,
    value: Option<SymbolId>,
    children: Vec<u32>,
    depth: u16,
}

/// A forest of XML documents sharing one tag dictionary and value interner.
#[derive(Debug)]
pub struct XmlForest {
    dict: TagDict,
    values: ValueInterner,
    nodes: Vec<NodeData>,
    roots: Vec<NodeId>,
}

/// A contiguous pre-order span of nodes, produced by
/// [`XmlForest::partition_nodes`]. A range may start anywhere — mid
/// document, mid subtree — because pre-order enumeration over it can be
/// resumed by seeding the ancestor stack with the first node's root
/// path (`xtwig-core`'s `for_each_root_path_in` does exactly that).
/// Splitting at arbitrary boundaries is what keeps shards balanced even
/// for the paper's single-document datasets (XMark and DBLP are each
/// one big document, so a whole-document partitioner could never split
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRange {
    /// First node id of the range.
    pub first: NodeId,
    /// Last node id of the range, inclusive.
    pub last: NodeId,
}

impl NodeRange {
    /// Nodes covered by the range.
    pub fn len(&self) -> u64 {
        self.last.0 - self.first.0 + 1
    }

    /// Never true: ranges always cover at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for XmlForest {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlForest {
    /// Creates an empty forest containing only the virtual root.
    pub fn new() -> Self {
        let dict = TagDict::new();
        let nodes = vec![NodeData {
            tag: TagId::VIRTUAL_ROOT,
            kind: NodeKind::Element,
            parent: 0,
            subtree_end: 0,
            value: None,
            children: Vec::new(),
            depth: 0,
        }];
        XmlForest { dict, values: ValueInterner::new(), nodes, roots: Vec::new() }
    }

    /// Begins building a new document in this forest.
    pub fn builder(&mut self) -> TreeBuilder<'_> {
        TreeBuilder { forest: self, stack: Vec::new() }
    }

    /// The tag dictionary.
    pub fn dict(&self) -> &TagDict {
        &self.dict
    }

    /// Mutable access to the tag dictionary (used by query compilers that
    /// must intern tags appearing only in queries).
    pub fn dict_mut(&mut self) -> &mut TagDict {
        &mut self.dict
    }

    /// The leaf-value interner.
    pub fn values(&self) -> &ValueInterner {
        &self.values
    }

    /// Mutable interner access for [`crate::snapshot`]'s replay, which
    /// pre-interns the persisted symbol table so reconstructed
    /// [`SymbolId`]s match the originals exactly (the interner may hold
    /// symbols no surviving node references, e.g. intermediate strings
    /// from incremental [`TreeBuilder::text`] calls).
    pub(crate) fn values_mut(&mut self) -> &mut ValueInterner {
        &mut self.values
    }

    /// Document roots, in insertion order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Total node count, including the virtual root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True if `id` addresses a node in this forest.
    pub fn contains(&self, id: NodeId) -> bool {
        id.idx() < self.nodes.len()
    }

    /// Tag of `id`.
    pub fn tag(&self, id: NodeId) -> TagId {
        self.nodes[id.idx()].tag
    }

    /// Tag name of `id` (attributes include the leading `'@'`).
    pub fn tag_name(&self, id: NodeId) -> &str {
        self.dict.name(self.tag(id))
    }

    /// Element/attribute kind of `id`.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.idx()].kind
    }

    /// Parent of `id`; `None` for the virtual root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        if id == NodeId::VIRTUAL_ROOT {
            None
        } else {
            Some(NodeId(u64::from(self.nodes[id.idx()].parent)))
        }
    }

    /// Children of `id` in document order (attributes first, as built).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.idx()].children.iter().map(|&c| NodeId(u64::from(c)))
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: NodeId) -> usize {
        self.nodes[id.idx()].children.len()
    }

    /// Interned leaf value of `id`, if any.
    pub fn value(&self, id: NodeId) -> Option<SymbolId> {
        self.nodes[id.idx()].value
    }

    /// Leaf value of `id` as a string, if any.
    pub fn value_str(&self, id: NodeId) -> Option<&str> {
        self.value(id).map(|s| self.values.value(s))
    }

    /// Depth of `id`: the virtual root has depth 0, document roots depth 1.
    pub fn depth(&self, id: NodeId) -> usize {
        usize::from(self.nodes[id.idx()].depth)
    }

    /// True iff `anc` is a proper ancestor of `desc` (O(1) via pre-order
    /// intervals).
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        anc.0 < desc.0 && desc.0 <= u64::from(self.nodes[anc.idx()].subtree_end)
    }

    /// Last pre-order id inside `id`'s subtree (inclusive).
    pub fn subtree_end(&self, id: NodeId) -> NodeId {
        NodeId(u64::from(self.nodes[id.idx()].subtree_end))
    }

    /// The document root that `id` belongs to (itself if it is one);
    /// `None` for the virtual root.
    pub fn document_root_of(&self, id: NodeId) -> Option<NodeId> {
        if id == NodeId::VIRTUAL_ROOT {
            return None;
        }
        let mut cur = id;
        loop {
            let parent = self.parent(cur)?;
            if parent == NodeId::VIRTUAL_ROOT {
                return Some(cur);
            }
            cur = parent;
        }
    }

    /// Ids along the path from the document root down to `id`, inclusive.
    pub fn root_path_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(self.depth(id));
        let mut cur = Some(id);
        while let Some(n) = cur {
            if n == NodeId::VIRTUAL_ROOT {
                break;
            }
            ids.push(n);
            cur = self.parent(n);
        }
        ids.reverse();
        ids
    }

    /// Tags along the path from the document root down to `id`, inclusive.
    pub fn root_path_tags(&self, id: NodeId) -> Vec<TagId> {
        self.root_path_ids(id).into_iter().map(|n| self.tag(n)).collect()
    }

    /// Pre-order iterator over all element/attribute nodes (excluding the
    /// virtual root).
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.nodes.len() as u64).map(NodeId)
    }

    /// The range covering every document, or `None` for an empty forest.
    pub fn full_range(&self) -> Option<NodeRange> {
        if self.nodes.len() <= 1 {
            None
        } else {
            Some(NodeRange { first: NodeId(1), last: NodeId(self.nodes.len() as u64 - 1) })
        }
    }

    /// Pre-order iterator over one [`NodeRange`].
    pub fn iter_range(&self, range: NodeRange) -> impl Iterator<Item = NodeId> + '_ {
        debug_assert!(range.last.idx() < self.nodes.len());
        (range.first.0..=range.last.0).map(NodeId)
    }

    /// Partitions the forest into at most `max_shards` contiguous
    /// pre-order ranges of (near-)equal node count. Boundaries fall
    /// anywhere — shard enumeration reseeds its ancestor stack from the
    /// boundary node's root path — so even a forest holding one huge
    /// document splits evenly. Returns an empty vector for an empty
    /// forest; otherwise the ranges concatenate to
    /// [`XmlForest::full_range`].
    pub fn partition_nodes(&self, max_shards: usize) -> Vec<NodeRange> {
        let Some(full) = self.full_range() else {
            return Vec::new();
        };
        let total = full.last.0 - full.first.0 + 1;
        let shards = (max_shards.max(1) as u64).min(total);
        let mut out = Vec::with_capacity(shards as usize);
        let mut start = full.first.0;
        for s in 1..=shards {
            let end = full.first.0 + (total * s) / shards - 1;
            out.push(NodeRange { first: NodeId(start), last: NodeId(end) });
            start = end + 1;
        }
        debug_assert_eq!(out.first().map(|r| r.first), Some(full.first));
        debug_assert_eq!(out.last().map(|r| r.last), Some(full.last));
        out
    }

    /// Pre-order iterator over `root`'s subtree, including `root` itself.
    pub fn iter_subtree(&self, root: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let end = self.nodes[root.idx()].subtree_end;
        (root.0..=u64::from(end)).map(NodeId)
    }

    /// Maximum depth over all nodes (virtual root = 0).
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| usize::from(n.depth)).max().unwrap_or(0)
    }

    /// Approximate serialized size of the forest in bytes, used by the
    /// benchmark harness to report index-space/data-size ratios the way
    /// Fig. 9 does.
    pub fn approx_text_bytes(&self) -> u64 {
        let mut total = 0u64;
        for id in self.iter_nodes() {
            let name_len = self.tag_name(id).len() as u64;
            total += match self.kind(id) {
                // <tag> ... </tag>
                NodeKind::Element => 2 * name_len + 5,
                // name="value"
                NodeKind::Attribute => name_len + 3,
            };
            if let Some(v) = self.value_str(id) {
                total += v.len() as u64;
            }
        }
        total
    }

    fn push_node(
        &mut self,
        tag: TagId,
        kind: NodeKind,
        parent: NodeId,
        value: Option<SymbolId>,
    ) -> NodeId {
        let idx = u32::try_from(self.nodes.len()).expect("forest node-count overflow");
        let depth = self.nodes[parent.idx()].depth + 1;
        self.nodes.push(NodeData {
            tag,
            kind,
            parent: u32::try_from(parent.0).expect("parent id overflow"),
            subtree_end: idx,
            value,
            children: Vec::new(),
            depth,
        });
        self.nodes[parent.idx()].children.push(idx);
        NodeId(u64::from(idx))
    }

    fn seal_subtree(&mut self, id: NodeId) {
        let end = u32::try_from(self.nodes.len() - 1).expect("forest node-count overflow");
        self.nodes[id.idx()].subtree_end = end;
        // The virtual root's subtree always spans the whole forest.
        self.nodes[0].subtree_end = end;
    }
}

/// Streaming builder appending one document (in document order) to a forest.
///
/// The builder enforces pre-order construction, which is what guarantees
/// that node ids are document-order ranks.
pub struct TreeBuilder<'f> {
    forest: &'f mut XmlForest,
    stack: Vec<NodeId>,
}

impl<'f> TreeBuilder<'f> {
    /// Opens an element. The first `open` of a builder creates a document
    /// root (a child of the virtual root).
    pub fn open(&mut self, tag: &str) -> NodeId {
        let tag = self.forest.dict.intern(tag);
        let parent = self.stack.last().copied().unwrap_or(NodeId::VIRTUAL_ROOT);
        let id = self.forest.push_node(tag, NodeKind::Element, parent, None);
        if parent == NodeId::VIRTUAL_ROOT {
            self.forest.roots.push(id);
        }
        self.stack.push(id);
        id
    }

    /// Adds an attribute node (name is stored as `@name`) with a value.
    ///
    /// # Panics
    /// Panics if no element is open, or if the open element already has
    /// element children (attributes belong to the open tag, and node ids
    /// are pre-order ranks — an attribute after a child element would
    /// break document order).
    pub fn attr(&mut self, name: &str, value: &str) -> NodeId {
        let owner = *self.stack.last().expect("attr() with no open element");
        assert!(
            self.forest.children(owner).all(|c| self.forest.kind(c) == NodeKind::Attribute),
            "attr() must precede child elements"
        );
        let tag = if let Some(rest) = name.strip_prefix('@') {
            self.forest.dict.intern(&format!("@{rest}"))
        } else {
            self.forest.dict.intern(&format!("@{name}"))
        };
        let sym = self.forest.values.intern(value);
        self.forest.push_node(tag, NodeKind::Attribute, owner, Some(sym))
    }

    /// Sets (or appends to) the text value of the currently open element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn text(&mut self, value: &str) {
        let owner = *self.stack.last().expect("text() with no open element");
        let combined = match self.forest.value_str(owner) {
            Some(existing) => {
                let mut s = String::with_capacity(existing.len() + value.len());
                s.push_str(existing);
                s.push_str(value);
                s
            }
            None => value.to_owned(),
        };
        let sym = self.forest.values.intern(&combined);
        self.forest.nodes[owner.idx()].value = Some(sym);
    }

    /// Convenience: `open`, `text`, `close` in one call.
    pub fn leaf(&mut self, tag: &str, value: &str) -> NodeId {
        let id = self.open(tag);
        self.text(value);
        self.close();
        id
    }

    /// Closes the innermost open element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close(&mut self) {
        let id = self.stack.pop().expect("close() with no open element");
        self.forest.seal_subtree(id);
    }

    /// Number of currently open elements.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Finishes the document.
    ///
    /// # Panics
    /// Panics if elements remain open.
    pub fn finish(self) {
        assert!(
            self.stack.is_empty(),
            "TreeBuilder::finish() with {} unclosed element(s)",
            self.stack.len()
        );
    }
}

/// Builds the paper's Figure 1 book document, used across the repo's tests,
/// examples, and documentation.
///
/// The node ids assigned here line up with the ids printed beside the nodes
/// in Figure 1(b): book=1, title=2, allauthors=5, first author=6, …
pub fn fig1_book_document() -> XmlForest {
    let mut forest = XmlForest::new();
    let mut b = forest.builder();
    b.open("book"); // 1
    b.leaf("title", "XML"); // 2

    // Nodes 3 and 4 are unnamed in the figure; the figure's id gaps (2 -> 5)
    // indicate siblings elided by the "..." in the source listing. We add
    // two filler nodes so the famous ids (5, 6, 7, 10, 21, 25, 41, 42, 45)
    // line up with the figure.
    b.leaf("isbn", "1-55860-622-X"); // 3
    b.leaf("publisher", "Morgan Kaufmann"); // 4
    b.open("allauthors"); // 5
    {
        b.open("author"); // 6
        b.leaf("fn", "jane"); // 7
        b.leaf("mi", "q"); // 8
        b.leaf("nickname", "janey"); // 9
        b.leaf("ln", "poe"); // 10
        b.close();
        // Filler to align the second author block at id 21.
        b.open("contact"); // 11
        for i in 0..9 {
            b.leaf("detail", &format!("d{i}")); // 12..=20
        }
        b.close();
        b.open("author"); // 21
        b.leaf("fn", "john"); // 22
        b.leaf("mi", "r"); // 23
        b.leaf("nickname", "johnny"); // 24
        b.leaf("ln", "doe"); // 25
        b.close();
        b.open("contact"); // 26
        for i in 0..14 {
            b.leaf("detail", &format!("e{i}")); // 27..=40
        }
        b.close();
        b.open("author"); // 41
        b.leaf("fn", "jane"); // 42
        b.leaf("mi", "s"); // 43
        b.leaf("nickname", "jd"); // 44
        b.leaf("ln", "doe"); // 45
        b.close();
    }
    b.close(); // allauthors
    b.open("year"); // 46
    b.text("2000");
    b.close();
    b.open("chapter"); // 47
    b.leaf("title", "XML"); // 48
    b.open("section"); // 49
    b.leaf("head", "Origins"); // 50
    b.leaf("p", "In the beginning"); // 51
    b.close(); // section
    b.close(); // chapter
    b.close(); // book
    b.finish();
    forest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> XmlForest {
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("book"); // 1
        b.leaf("title", "XML"); // 2
        b.open("allauthors"); // 3
        b.open("author"); // 4
        b.leaf("fn", "jane"); // 5
        b.leaf("ln", "doe"); // 6
        b.close();
        b.close();
        b.close();
        b.finish();
        f
    }

    #[test]
    fn preorder_ids_are_assigned_in_document_order() {
        let f = tiny();
        assert_eq!(f.roots(), &[NodeId(1)]);
        assert_eq!(f.tag_name(NodeId(1)), "book");
        assert_eq!(f.tag_name(NodeId(2)), "title");
        assert_eq!(f.tag_name(NodeId(3)), "allauthors");
        assert_eq!(f.tag_name(NodeId(4)), "author");
        assert_eq!(f.tag_name(NodeId(5)), "fn");
        assert_eq!(f.tag_name(NodeId(6)), "ln");
        assert_eq!(f.node_count(), 7); // virtual root + 6
    }

    #[test]
    fn values_attach_to_owning_nodes() {
        let f = tiny();
        assert_eq!(f.value_str(NodeId(2)), Some("XML"));
        assert_eq!(f.value_str(NodeId(5)), Some("jane"));
        assert_eq!(f.value_str(NodeId(1)), None);
    }

    #[test]
    fn parent_child_navigation() {
        let f = tiny();
        assert_eq!(f.parent(NodeId(1)), Some(NodeId::VIRTUAL_ROOT));
        assert_eq!(f.parent(NodeId::VIRTUAL_ROOT), None);
        assert_eq!(f.parent(NodeId(5)), Some(NodeId(4)));
        let kids: Vec<_> = f.children(NodeId(4)).collect();
        assert_eq!(kids, vec![NodeId(5), NodeId(6)]);
        assert_eq!(f.child_count(NodeId(1)), 2);
    }

    #[test]
    fn ancestor_test_uses_preorder_intervals() {
        let f = tiny();
        assert!(f.is_ancestor(NodeId(1), NodeId(6)));
        assert!(f.is_ancestor(NodeId(3), NodeId(4)));
        assert!(!f.is_ancestor(NodeId(4), NodeId(4))); // not reflexive
        assert!(!f.is_ancestor(NodeId(2), NodeId(3))); // sibling subtrees
        assert!(f.is_ancestor(NodeId::VIRTUAL_ROOT, NodeId(1)));
    }

    #[test]
    fn depths_and_root_paths() {
        let f = tiny();
        assert_eq!(f.depth(NodeId(1)), 1);
        assert_eq!(f.depth(NodeId(5)), 4);
        assert_eq!(f.root_path_ids(NodeId(5)), vec![NodeId(1), NodeId(3), NodeId(4), NodeId(5)]);
        let tags: Vec<_> =
            f.root_path_tags(NodeId(5)).iter().map(|&t| f.dict().name(t).to_owned()).collect();
        assert_eq!(tags, vec!["book", "allauthors", "author", "fn"]);
        assert_eq!(f.max_depth(), 4);
    }

    #[test]
    fn ids_strictly_increase_down_any_path() {
        // The property underpinning delta-encoded IdLists (paper §4.1).
        let f = fig1_book_document();
        for id in f.iter_nodes() {
            let path = f.root_path_ids(id);
            for w in path.windows(2) {
                assert!(w[0] < w[1], "ids must increase along root paths");
            }
        }
    }

    #[test]
    fn attributes_get_at_prefixed_tags_and_values() {
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("open_auction");
        let a = b.attr("increase", "75.00");
        b.close();
        b.finish();
        assert_eq!(f.kind(a), NodeKind::Attribute);
        assert_eq!(f.tag_name(a), "@increase");
        assert_eq!(f.value_str(a), Some("75.00"));
    }

    #[test]
    fn text_appends_on_mixed_content() {
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("p");
        b.text("hello ");
        b.open("b");
        b.text("bold");
        b.close();
        b.text("world");
        b.close();
        b.finish();
        assert_eq!(f.value_str(NodeId(1)), Some("hello world"));
        assert_eq!(f.value_str(NodeId(2)), Some("bold"));
    }

    #[test]
    fn multiple_documents_share_virtual_root() {
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("a");
        b.close();
        b.finish();
        let mut b = f.builder();
        b.open("b");
        b.close();
        b.finish();
        assert_eq!(f.roots().len(), 2);
        assert_eq!(f.parent(f.roots()[0]), Some(NodeId::VIRTUAL_ROOT));
        assert_eq!(f.parent(f.roots()[1]), Some(NodeId::VIRTUAL_ROOT));
        assert!(f.is_ancestor(NodeId::VIRTUAL_ROOT, f.roots()[1]));
    }

    #[test]
    fn subtree_iteration_matches_interval() {
        let f = fig1_book_document();
        let authors: Vec<_> = f.iter_nodes().filter(|&n| f.tag_name(n) == "author").collect();
        assert_eq!(authors, vec![NodeId(6), NodeId(21), NodeId(41)]);
        let sub: Vec<_> = f.iter_subtree(NodeId(6)).collect();
        assert_eq!(sub.len(), 5); // author + fn, mi, nickname, ln
        assert_eq!(sub[0], NodeId(6));
    }

    #[test]
    fn fig1_ids_line_up_with_the_paper() {
        let f = fig1_book_document();
        assert_eq!(f.tag_name(NodeId(1)), "book");
        assert_eq!(f.tag_name(NodeId(2)), "title");
        assert_eq!(f.value_str(NodeId(2)), Some("XML"));
        assert_eq!(f.tag_name(NodeId(5)), "allauthors");
        assert_eq!(f.tag_name(NodeId(6)), "author");
        assert_eq!(f.value_str(NodeId(7)), Some("jane"));
        assert_eq!(f.value_str(NodeId(10)), Some("poe"));
        assert_eq!(f.value_str(NodeId(22)), Some("john"));
        assert_eq!(f.value_str(NodeId(25)), Some("doe"));
        assert_eq!(f.tag_name(NodeId(41)), "author");
        assert_eq!(f.value_str(NodeId(42)), Some("jane"));
        assert_eq!(f.value_str(NodeId(45)), Some("doe"));
    }

    #[test]
    fn document_root_of_resolves_through_depth() {
        let f = fig1_book_document();
        assert_eq!(f.document_root_of(NodeId(45)), Some(NodeId(1)));
        assert_eq!(f.document_root_of(NodeId(1)), Some(NodeId(1)));
        assert_eq!(f.document_root_of(NodeId::VIRTUAL_ROOT), None);
    }

    #[test]
    #[should_panic(expected = "attr() must precede child elements")]
    fn attr_after_child_element_is_rejected() {
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("a");
        b.open("b");
        b.close();
        b.attr("x", "1");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_unclosed_elements() {
        let mut f = XmlForest::new();
        let mut b = f.builder();
        b.open("a");
        b.finish();
    }
}
