//! XML substrate for the twig-index reproduction.
//!
//! This crate implements the data model of Chen et al. (ICDE 2005), §2.1:
//! an XML database is a forest of rooted, ordered, labeled trees whose
//! non-leaf nodes are elements and attributes (labeled with tags and
//! attribute names) and whose leaf nodes are string values. Every
//! element/attribute node carries a unique numeric identifier assigned in
//! document (pre-)order.
//!
//! Provided here:
//!
//! * [`TagDict`] — the tag-name dictionary used to designator-encode schema
//!   paths (paper §3.1).
//! * [`XmlForest`] / [`TreeBuilder`] — the arena-based forest with a virtual
//!   root (id 0) acting as the parent of all documents (paper §3.3,
//!   footnote 4).
//! * [`parser`] — a small, dependency-free XML parser (elements, attributes,
//!   text, CDATA, comments, standard entities).
//! * [`twig`] — node-labeled query twig patterns with parent-child and
//!   ancestor-descendant edges (paper Fig. 1(c)).
//! * [`naive`] — a direct in-memory twig matcher used as the correctness
//!   oracle for every index strategy in `xtwig-core`.

pub mod dictionary;
pub mod naive;
pub mod parser;
pub mod serialize;
pub mod snapshot;
pub mod tree;
pub mod twig;

pub use dictionary::{TagDict, TagId};
pub use parser::{parse_document, ParseError};
pub use snapshot::SnapshotError;
pub use tree::{NodeId, NodeKind, NodeRange, SymbolId, TreeBuilder, XmlForest};
pub use twig::{Axis, TwigNode, TwigPattern};
