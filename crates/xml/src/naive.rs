//! Direct in-memory twig matching — the correctness oracle.
//!
//! Implements the match semantics of paper §2.1 by brute force over the
//! forest: a match is a mapping from twig nodes to data nodes preserving
//! tags/values and the parent-child / ancestor-descendant edges. Every
//! index strategy in `xtwig-core` is property-tested against this module.
//!
//! Two evaluation styles are provided:
//!
//! * [`satisfying_sets`] / [`select`] — for each twig node, the set of data
//!   nodes that participate in at least one full match ("filter"
//!   semantics). Linear-ish passes; safe on large generated datasets.
//! * [`enumerate_matches`] — all full match tuples. Output can be
//!   exponential; intended for small inputs in tests.

use crate::tree::{NodeId, XmlForest};
use crate::twig::{Axis, TwigPattern};
use std::collections::{BTreeSet, HashSet};

/// For each twig node index, the set of data nodes bound to it in at least
/// one full match of the pattern.
pub fn satisfying_sets(forest: &XmlForest, twig: &TwigPattern) -> Vec<BTreeSet<NodeId>> {
    let n = twig.len();
    // 1. Label candidates.
    let mut cand: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (qi, qnode) in twig.nodes.iter().enumerate() {
        let Some(tag) = forest.dict().lookup(&qnode.tag) else { continue };
        let want_value = match &qnode.value {
            None => None,
            Some(v) => match forest.values().lookup(v) {
                Some(sym) => Some(sym),
                None => {
                    cand[qi] = Vec::new();
                    continue;
                }
            },
        };
        cand[qi] = forest
            .iter_nodes()
            .filter(|&d| forest.tag(d) == tag)
            .filter(|&d| match want_value {
                None => true,
                Some(sym) => forest.value(d) == Some(sym),
            })
            .collect();
    }

    // 2. Bottom-up: down[qi] = candidates whose subtree satisfies the
    //    sub-twig rooted at qi.
    let mut down: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let order = twig.preorder();
    for &qi in order.iter().rev() {
        let edges = twig.nodes[qi].children.clone();
        if edges.is_empty() {
            down[qi] = cand[qi].clone();
            continue;
        }
        let child_sets: Vec<(Axis, HashSet<NodeId>, Vec<NodeId>)> = edges
            .iter()
            .map(|&(axis, qc)| (axis, down[qc].iter().copied().collect(), down[qc].clone()))
            .collect();
        down[qi] = cand[qi]
            .iter()
            .copied()
            .filter(|&v| {
                child_sets.iter().all(|(axis, set, sorted)| match axis {
                    Axis::Child => forest.children(v).any(|c| set.contains(&c)),
                    Axis::Descendant => has_in_subtree(forest, v, sorted),
                })
            })
            .collect();
    }

    // 3. Top-down: up[qi] = members of down[qi] with a valid context above.
    let mut up: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    up[0] = match twig.root_axis {
        Axis::Child => down[0]
            .iter()
            .copied()
            .filter(|&v| forest.parent(v) == Some(NodeId::VIRTUAL_ROOT))
            .collect(),
        // Every element/attribute node is a proper descendant of the
        // virtual root.
        Axis::Descendant => down[0].clone(),
    };
    for &qi in &order {
        let parents: HashSet<NodeId> = up[qi].iter().copied().collect();
        for &(axis, qc) in twig.nodes[qi].children.clone().iter() {
            up[qc] = down[qc]
                .iter()
                .copied()
                .filter(|&u| match axis {
                    Axis::Child => forest.parent(u).is_some_and(|p| parents.contains(&p)),
                    Axis::Descendant => {
                        let mut a = forest.parent(u);
                        while let Some(p) = a {
                            if p == NodeId::VIRTUAL_ROOT {
                                break;
                            }
                            if parents.contains(&p) {
                                return true;
                            }
                            a = forest.parent(p);
                        }
                        false
                    }
                })
                .collect();
        }
    }

    up.into_iter().map(|v| v.into_iter().collect()).collect()
}

/// True if `sorted` (ascending) contains a node strictly inside `v`'s
/// subtree.
fn has_in_subtree(forest: &XmlForest, v: NodeId, sorted: &[NodeId]) -> bool {
    let lo = NodeId(v.0 + 1);
    let hi = forest.subtree_end(v);
    let i = sorted.partition_point(|&x| x < lo);
    i < sorted.len() && sorted[i] <= hi
}

/// The ids bound to the twig's output node across all matches.
pub fn select(forest: &XmlForest, twig: &TwigPattern) -> BTreeSet<NodeId> {
    satisfying_sets(forest, twig).swap_remove(twig.output)
}

/// All full match tuples; `tuple[i]` is the binding of twig node `i`.
///
/// The result size can be exponential in the twig size — use on small
/// inputs (tests, examples) only.
pub fn enumerate_matches(forest: &XmlForest, twig: &TwigPattern) -> Vec<Vec<NodeId>> {
    let sets = satisfying_sets(forest, twig);
    let sat: Vec<Vec<NodeId>> = sets.iter().map(|s| s.iter().copied().collect()).collect();
    let mut out = Vec::new();
    for &root in &sat[0] {
        let mut tuple = vec![NodeId::VIRTUAL_ROOT; twig.len()];
        extend_match(forest, twig, &sat, 0, root, &mut tuple, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn extend_match(
    forest: &XmlForest,
    twig: &TwigPattern,
    sat: &[Vec<NodeId>],
    qi: usize,
    v: NodeId,
    tuple: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    tuple[qi] = v;
    // Collect, per child edge, the viable bindings under v.
    let edges = &twig.nodes[qi].children;
    if edges.is_empty() {
        if fully_bound(twig, qi, tuple) {
            out.push(tuple.clone());
        }
        return;
    }
    // Depth-first assignment over the child edges.
    assign_children(forest, twig, sat, qi, 0, v, tuple, out);
}

#[allow(clippy::too_many_arguments)]
fn assign_children(
    forest: &XmlForest,
    twig: &TwigPattern,
    sat: &[Vec<NodeId>],
    qi: usize,
    edge_idx: usize,
    v: NodeId,
    tuple: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    let edges = &twig.nodes[qi].children;
    if edge_idx == edges.len() {
        out.push(tuple.clone());
        return;
    }
    let (axis, qc) = edges[edge_idx];
    let viable: Vec<NodeId> = sat[qc]
        .iter()
        .copied()
        .filter(|&u| match axis {
            Axis::Child => forest.parent(u) == Some(v),
            Axis::Descendant => forest.is_ancestor(v, u),
        })
        .collect();
    for u in viable {
        // Recurse into u's own sub-twig first; collect completions by
        // re-entering assign_children for the remaining sibling edges.
        let mut sub_out = Vec::new();
        extend_match(forest, twig, sat, qc, u, tuple, &mut sub_out);
        for sub in sub_out {
            let mut t = sub;
            std::mem::swap(tuple, &mut t);
            assign_children(forest, twig, sat, qi, edge_idx + 1, v, tuple, out);
            std::mem::swap(tuple, &mut t);
        }
    }
}

fn fully_bound(_twig: &TwigPattern, _qi: usize, _tuple: &[NodeId]) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::fig1_book_document;
    use crate::twig::TwigPattern;
    use crate::Axis;

    fn ids(set: &BTreeSet<NodeId>) -> Vec<u64> {
        set.iter().map(|n| n.0).collect()
    }

    /// /book[title='XML']//author[fn='jane'][ln='doe'] — the intro query.
    fn paper_twig() -> TwigPattern {
        let mut twig = TwigPattern::single(Axis::Child, "book", None);
        twig.add_child(0, Axis::Child, "title", Some("XML"));
        let author = twig.add_child(0, Axis::Descendant, "author", None);
        twig.add_child(author, Axis::Child, "fn", Some("jane"));
        twig.add_child(author, Axis::Child, "ln", Some("doe"));
        twig.output = author;
        twig
    }

    #[test]
    fn intro_query_selects_author_41() {
        // Only the third author has fn=jane AND ln=doe (paper §1).
        let f = fig1_book_document();
        let result = select(&f, &paper_twig());
        assert_eq!(ids(&result), vec![41]);
    }

    #[test]
    fn single_path_with_value() {
        let f = fig1_book_document();
        let p = TwigPattern::path(
            &[
                (Axis::Child, "book"),
                (Axis::Child, "allauthors"),
                (Axis::Child, "author"),
                (Axis::Child, "fn"),
            ],
            Some("jane"),
        );
        assert_eq!(ids(&select(&f, &p)), vec![7, 42]);
    }

    #[test]
    fn descendant_axis_spans_depths() {
        let f = fig1_book_document();
        // //title matches both /book/title (2) and /book/chapter/title (48).
        let p = TwigPattern::path(&[(Axis::Descendant, "title")], None);
        assert_eq!(ids(&select(&f, &p)), vec![2, 48]);
        // /book/title is anchored: only node 2.
        let p = TwigPattern::path(&[(Axis::Child, "book"), (Axis::Child, "title")], None);
        assert_eq!(ids(&select(&f, &p)), vec![2]);
    }

    #[test]
    fn anchored_root_must_be_document_root() {
        let f = fig1_book_document();
        // /author does not match: authors are not document roots.
        let p = TwigPattern::path(&[(Axis::Child, "author")], None);
        assert!(select(&f, &p).is_empty());
        let p = TwigPattern::path(&[(Axis::Descendant, "author")], None);
        assert_eq!(select(&f, &p).len(), 3);
    }

    #[test]
    fn branch_predicates_are_conjunctive() {
        let f = fig1_book_document();
        // //author[fn='jane'] matches authors 6 and 41.
        let mut p = TwigPattern::single(Axis::Descendant, "author", None);
        p.add_child(0, Axis::Child, "fn", Some("jane"));
        assert_eq!(ids(&select(&f, &p)), vec![6, 41]);
        // Adding [ln='doe'] narrows to author 41 only.
        p.add_child(0, Axis::Child, "ln", Some("doe"));
        assert_eq!(ids(&select(&f, &p)), vec![41]);
    }

    #[test]
    fn value_absent_from_data_yields_empty() {
        let f = fig1_book_document();
        let p = TwigPattern::path(&[(Axis::Descendant, "fn")], Some("zebediah"));
        assert!(select(&f, &p).is_empty());
        let p = TwigPattern::path(&[(Axis::Descendant, "nosuchtag")], None);
        assert!(select(&f, &p).is_empty());
    }

    #[test]
    fn satisfying_sets_cover_all_pattern_nodes() {
        let f = fig1_book_document();
        let twig = paper_twig();
        let sets = satisfying_sets(&f, &twig);
        assert_eq!(sets.len(), 5);
        assert_eq!(ids(&sets[0]), vec![1]); // book
        assert_eq!(ids(&sets[1]), vec![2]); // title (chapter title has no author sibling context)
        assert_eq!(ids(&sets[2]), vec![41]); // author
        assert_eq!(ids(&sets[3]), vec![42]); // fn
        assert_eq!(ids(&sets[4]), vec![45]); // ln
    }

    #[test]
    fn enumerate_matches_produces_full_tuples() {
        let f = fig1_book_document();
        let twig = paper_twig();
        let tuples = enumerate_matches(&f, &twig);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].iter().map(|n| n.0).collect::<Vec<_>>(), vec![1, 2, 41, 42, 45]);
    }

    #[test]
    fn enumerate_matches_counts_combinations() {
        // <r><a><b/><b/></a></r> with twig /r/a[b]: the b binding varies.
        let mut f = XmlForest::new();
        let mut bld = f.builder();
        bld.open("r");
        bld.open("a");
        bld.open("b");
        bld.close();
        bld.open("b");
        bld.close();
        bld.close();
        bld.close();
        bld.finish();
        let mut twig = TwigPattern::single(Axis::Child, "r", None);
        let a = twig.add_child(0, Axis::Child, "a", None);
        twig.add_child(a, Axis::Child, "b", None);
        twig.output = a;
        let tuples = enumerate_matches(&f, &twig);
        assert_eq!(tuples.len(), 2);
        assert_eq!(select(&f, &twig).len(), 1);
    }

    #[test]
    fn descendant_is_proper_not_self() {
        // twig //a//a on <a><a/></a> must bind outer->inner only.
        let mut f = XmlForest::new();
        let mut bld = f.builder();
        bld.open("a");
        bld.open("a");
        bld.close();
        bld.close();
        bld.finish();
        let mut twig = TwigPattern::single(Axis::Descendant, "a", None);
        let inner = twig.add_child(0, Axis::Descendant, "a", None);
        twig.output = inner;
        let tuples = enumerate_matches(&f, &twig);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0], vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn deep_branching_twig() {
        let f = fig1_book_document();
        // /book[year='2000']/chapter[title='XML']/section/head
        let mut twig = TwigPattern::single(Axis::Child, "book", None);
        twig.add_child(0, Axis::Child, "year", Some("2000"));
        let ch = twig.add_child(0, Axis::Child, "chapter", None);
        twig.add_child(ch, Axis::Child, "title", Some("XML"));
        let sec = twig.add_child(ch, Axis::Child, "section", None);
        let head = twig.add_child(sec, Axis::Child, "head", None);
        twig.output = head;
        assert_eq!(ids(&select(&f, &twig)), vec![50]);
    }

    #[test]
    fn multi_document_forest_matching() {
        let mut f = XmlForest::new();
        crate::parser::parse_document(&mut f, "<b><t>X</t></b>").unwrap();
        crate::parser::parse_document(&mut f, "<b><t>Y</t></b>").unwrap();
        let p = TwigPattern::path(&[(Axis::Child, "b"), (Axis::Child, "t")], Some("Y"));
        let r = select(&f, &p);
        assert_eq!(r.len(), 1);
        assert!(f.is_ancestor(f.roots()[1], *r.iter().next().unwrap()));
    }
}
