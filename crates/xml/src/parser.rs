//! A small, dependency-free XML parser.
//!
//! Supports the subset needed for the paper's datasets: elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions (skipped), an optional XML declaration and DOCTYPE line
//! (skipped, no internal subset expansion), and the five predefined
//! entities plus decimal/hex character references.
//!
//! Whitespace-only text between elements is dropped (the paper's data
//! model has no whitespace nodes); any other text becomes the owning
//! element's leaf value.

use crate::tree::{NodeId, XmlForest};
use std::fmt;

/// Parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one XML document from `input`, appending it to `forest`.
/// Returns the document root id.
pub fn parse_document(forest: &mut XmlForest, input: &str) -> Result<NodeId, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_prolog()?;
    let mut builder = forest.builder();
    let mut root: Option<NodeId> = None;
    let mut depth = 0usize;
    loop {
        p.skip_ws_if(depth == 0);
        if p.at_end() {
            break;
        }
        if p.peek() == Some(b'<') {
            match p.peek_at(1) {
                Some(b'/') => {
                    let name = p.parse_close_tag()?;
                    if depth == 0 {
                        return Err(p.err(format!("unmatched close tag </{name}>")));
                    }
                    builder.close();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Some(b'!') => p.skip_comment_or_cdata(&mut builder, depth)?,
                Some(b'?') => p.skip_pi()?,
                _ => {
                    if depth == 0 && root.is_some() {
                        return Err(p.err("multiple root elements".into()));
                    }
                    let (name, attrs, self_closing) = p.parse_open_tag()?;
                    let id = builder.open(&name);
                    if root.is_none() {
                        root = Some(id);
                    }
                    for (k, v) in attrs {
                        builder.attr(&k, &v);
                    }
                    if self_closing {
                        builder.close();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        depth += 1;
                    }
                }
            }
        } else {
            let text = p.parse_text()?;
            if depth == 0 {
                if !text.trim().is_empty() {
                    return Err(p.err("text outside root element".into()));
                }
            } else if !text.trim().is_empty() {
                builder.text(&text);
            }
        }
    }
    if depth != 0 {
        return Err(p.err(format!("{depth} unclosed element(s) at end of input")));
    }
    p.skip_trailing()?;
    builder.finish();
    root.ok_or_else(|| ParseError { offset: 0, message: "no root element".into() })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: String) -> ParseError {
        ParseError { offset: self.pos, message }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_ws_if(&mut self, cond: bool) {
        if cond {
            self.skip_ws();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(s)
    }

    fn skip_until(&mut self, s: &[u8]) -> Result<(), ParseError> {
        while self.pos < self.bytes.len() {
            if self.starts_with(s) {
                self.pos += s.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated construct, expected {:?}", String::from_utf8_lossy(s))))
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                self.skip_until(b"?>")?;
            } else if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
            } else if self.starts_with(b"<!DOCTYPE") {
                // Skip to the matching '>' (no internal-subset nesting of
                // '<' beyond one level of [...]).
                let mut bracket = 0i32;
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated DOCTYPE".into())),
                        Some(b'[') => bracket += 1,
                        Some(b']') => bracket -= 1,
                        Some(b'>') if bracket <= 0 => break,
                        _ => {}
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_trailing(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.at_end() {
                return Ok(());
            }
            if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
            } else if self.starts_with(b"<?") {
                self.skip_until(b"?>")?;
            } else {
                return Err(self.err("content after document element".into()));
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.starts_with(b"<?"));
        self.skip_until(b"?>")
    }

    fn skip_comment_or_cdata(
        &mut self,
        builder: &mut crate::tree::TreeBuilder<'_>,
        depth: usize,
    ) -> Result<(), ParseError> {
        if self.starts_with(b"<!--") {
            self.skip_until(b"-->")
        } else if self.starts_with(b"<![CDATA[") {
            self.pos += b"<![CDATA[".len();
            let start = self.pos;
            while self.pos < self.bytes.len() && !self.starts_with(b"]]>") {
                self.pos += 1;
            }
            if !self.starts_with(b"]]>") {
                return Err(self.err("unterminated CDATA section".into()));
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("CDATA is not valid UTF-8".into()))?;
            self.pos += 3;
            if depth > 0 && !text.is_empty() {
                builder.text(text);
            }
            Ok(())
        } else {
            Err(self.err("unsupported '<!' construct inside document".into()))
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => self.pos += 1,
            other => {
                return Err(self.err(format!("expected name, found {:?}", other.map(|c| c as char))))
            }
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(str::to_owned)
            .map_err(|_| self.err("name is not valid UTF-8".into()))
    }

    #[allow(clippy::type_complexity)]
    fn parse_open_tag(&mut self) -> Result<(String, Vec<(String, String)>, bool), ParseError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((name, attrs, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok((name, attrs, true));
                }
                Some(b) if Self::is_name_start(b) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value".into())),
                    };
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.at_end() {
                            return Err(self.err("unterminated attribute value".into()));
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("attribute value is not valid UTF-8".into()))?;
                    let value = decode_entities(raw).map_err(|m| self.err(m))?;
                    self.pos += 1;
                    attrs.push((aname, value));
                }
                other => {
                    return Err(
                        self.err(format!("unexpected {:?} in open tag", other.map(|c| c as char)))
                    )
                }
            }
        }
    }

    fn parse_close_tag(&mut self) -> Result<String, ParseError> {
        self.expect(b'<')?;
        self.expect(b'/')?;
        let name = self.parse_name()?;
        self.skip_ws();
        self.expect(b'>')?;
        Ok(name)
    }

    fn parse_text(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("text is not valid UTF-8".into()))?;
        decode_entities(raw).map_err(|m| self.err(m))
    }
}

/// Decodes the predefined entities and character references in `raw`.
fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or_else(|| {
            let head: String = rest.chars().take(10).collect();
            format!("unterminated entity reference near {head:?}")
        })?;
        let entity = &rest[1..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad hex character reference &{entity};"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid code point &{entity};"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid code point &{entity};"))?,
                );
            }
            other => return Err(format!("unknown entity &{other};")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeId;

    fn parse(input: &str) -> XmlForest {
        let mut f = XmlForest::new();
        parse_document(&mut f, input).expect("parse failed");
        f
    }

    #[test]
    fn parses_paper_fragment() {
        let f = parse(
            "<book><title>XML</title><allauthors>\
             <author><fn>jane</fn><ln>poe</ln></author>\
             <author><fn>john</fn><ln>doe</ln></author>\
             </allauthors><year>2000</year></book>",
        );
        assert_eq!(f.tag_name(NodeId(1)), "book");
        assert_eq!(f.value_str(NodeId(2)), Some("XML"));
        let authors: Vec<_> = f.iter_nodes().filter(|&n| f.tag_name(n) == "author").collect();
        assert_eq!(authors.len(), 2);
        assert_eq!(f.value_str(NodeId(5)), Some("jane"));
    }

    #[test]
    fn parses_attributes_as_nodes() {
        let f = parse(r#"<open_auction increase="75.00" id="a1"><bidder/></open_auction>"#);
        let attrs: Vec<_> = f
            .children(NodeId(1))
            .filter(|&n| f.kind(n) == crate::tree::NodeKind::Attribute)
            .collect();
        assert_eq!(attrs.len(), 2);
        assert_eq!(f.tag_name(attrs[0]), "@increase");
        assert_eq!(f.value_str(attrs[0]), Some("75.00"));
        assert_eq!(f.tag_name(attrs[1]), "@id");
    }

    #[test]
    fn self_closing_elements() {
        let f = parse("<a><b/><c/></a>");
        assert_eq!(f.child_count(NodeId(1)), 2);
        assert_eq!(f.tag_name(NodeId(2)), "b");
        assert_eq!(f.tag_name(NodeId(3)), "c");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let f = parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>");
        assert_eq!(f.value_str(NodeId(1)), None);
        assert_eq!(f.value_str(NodeId(2)), Some("x"));
    }

    #[test]
    fn entities_and_char_refs() {
        let f = parse("<a>&lt;tag&gt; &amp; &quot;q&quot; &#65;&#x42;</a>");
        assert_eq!(f.value_str(NodeId(1)), Some("<tag> & \"q\" AB"));
    }

    #[test]
    fn cdata_sections() {
        let f = parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>");
        assert_eq!(f.value_str(NodeId(1)), Some("1 < 2 && 3 > 2"));
    }

    #[test]
    fn comments_and_pis_are_skipped() {
        let f = parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><?pi data?><b>x</b></a>");
        assert_eq!(f.tag_name(NodeId(1)), "a");
        assert_eq!(f.tag_name(NodeId(2)), "b");
    }

    #[test]
    fn doctype_is_skipped() {
        let f = parse("<!DOCTYPE book [<!ELEMENT book (#PCDATA)>]><book>x</book>");
        assert_eq!(f.value_str(NodeId(1)), Some("x"));
    }

    #[test]
    fn mixed_content_concatenates() {
        let f = parse("<p>hello <b>bold</b> world</p>");
        assert_eq!(f.value_str(NodeId(1)), Some("hello  world"));
        assert_eq!(f.value_str(NodeId(2)), Some("bold"));
    }

    #[test]
    fn error_on_mismatched_tags() {
        let mut f = XmlForest::new();
        // Depth bookkeeping rejects extra closers; tag-name mismatches
        // parse as well-nested (names are not cross-checked, like many
        // recovering parsers). Unbalanced input must error.
        assert!(parse_document(&mut f, "<a><b></b></a></c>").is_err());
    }

    #[test]
    fn error_on_unclosed() {
        let mut f = XmlForest::new();
        assert!(parse_document(&mut f, "<a><b>").is_err());
    }

    #[test]
    fn error_on_garbage() {
        let mut f = XmlForest::new();
        assert!(parse_document(&mut f, "hello").is_err());
        let mut f = XmlForest::new();
        assert!(parse_document(&mut f, "<a></a><b></b>").is_err());
        let mut f = XmlForest::new();
        assert!(parse_document(&mut f, "<a>&bogus;</a>").is_err());
    }

    #[test]
    fn two_documents_into_one_forest() {
        let mut f = XmlForest::new();
        let r1 = parse_document(&mut f, "<a><x>1</x></a>").unwrap();
        let r2 = parse_document(&mut f, "<b><y>2</y></b>").unwrap();
        assert_eq!(f.roots(), &[r1, r2]);
        assert!(r1 < r2);
    }
}
