//! The TCP server: an accept loop, one thread per connection, and the
//! request handler that bridges wire messages onto the catalog.
//!
//! Threading model: each connection's thread *is* its dispatcher —
//! requests run on it via [`TwigService::execute`] (the service's
//! direct-dispatch door), so the server adds no queue of its own, and
//! back-pressure is exactly the service's admission budget: when it is
//! exhausted the client sees a typed `Overloaded` response immediately
//! instead of a silently growing backlog.
//!
//! Error discipline per connection: a payload that *decodes wrong* gets
//! a typed `Malformed` response and the connection keeps serving
//! (framing is intact); a frame that *frames wrong* (bad magic,
//! oversized length) gets the typed response and then the connection is
//! dropped, because byte alignment is unrecoverable.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use xtwig_core::parse_xpath;
use xtwig_core::Strategy;
use xtwig_service::{Catalog, CatalogError, ServiceError, TwigService, UpdateOp};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{ErrorCode, Request, Response, WireOp};

/// A running TCP front end over a [`Catalog`].
pub struct Server {
    listener: TcpListener,
    catalog: Arc<Catalog>,
    stop: Arc<AtomicBool>,
    /// Stream clones for every live connection, so shutdown can unblock
    /// readers parked in `read_frame`.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

/// A handle that can stop a [`Server`] from another thread (the server
/// itself blocks in [`Server::run`]).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and unblocks the accept loop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it awake.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) over the
    /// given catalog.
    pub fn bind(addr: &str, catalog: Arc<Catalog>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            catalog,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle { addr: self.local_addr()?, stop: self.stop.clone() })
    }

    /// Serves until a client sends `Shutdown` or [`ServerHandle::stop`]
    /// fires; then closes every live connection, joins their threads,
    /// and returns.
    pub fn run(self) -> std::io::Result<()> {
        let mut joins = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.stop.load(Ordering::SeqCst) {
                break; // the wake-up connection itself, or raced stop
            }
            if let Ok(clone) = stream.try_clone() {
                self.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
            }
            let catalog = self.catalog.clone();
            let stop = self.stop.clone();
            let addr = self.local_addr()?;
            joins.push(std::thread::spawn(move || {
                serve_connection(stream, &catalog, &stop, addr);
            }));
        }
        // Unblock every connection thread still parked in read_frame.
        for conn in self.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for j in joins {
            let _ = j.join();
        }
        Ok(())
    }
}

/// One connection's serve loop; returns when the peer hangs up, framing
/// is lost, or shutdown begins.
fn serve_connection(
    stream: TcpStream,
    catalog: &Catalog,
    stop: &Arc<AtomicBool>,
    server_addr: SocketAddr,
) {
    // Never let one stuck peer pin a thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
    let Ok(read_half) = stream.try_clone() else { return };
    // Closing on exit must be explicit: the server's shutdown registry
    // holds another clone of this stream, so merely dropping our
    // handles would leave the socket open and the peer hanging.
    let closer = stream.try_clone().ok();
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    serve_loop(&mut reader, &mut writer, catalog, stop, server_addr);
    if let Some(s) = closer {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
}

/// The request/response pump; returning ends the connection.
fn serve_loop(
    reader: &mut std::io::BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    catalog: &Catalog,
    stop: &Arc<AtomicBool>,
    server_addr: SocketAddr,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(reader) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return,
            Err(e @ (FrameError::BadMagic(_) | FrameError::Oversized(_))) => {
                // Typed rejection, then drop: the byte stream is no
                // longer frame-aligned, so nothing after it is
                // trustworthy.
                let resp = Response::Error { code: ErrorCode::Malformed, message: e.to_string() };
                let (op, payload) = resp.encode();
                let _ = write_frame(writer, op, &payload);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let (resp, shutdown) = match Request::decode(&frame) {
            Ok(Request::Shutdown) => (Response::ShutdownAck, true),
            Ok(req) => (handle_request(catalog, &req), false),
            Err(e) => (
                // Framing held, payload didn't: answer and keep going.
                Response::Error { code: ErrorCode::Malformed, message: e.0 },
                false,
            ),
        };
        let (op, payload) = resp.encode();
        if write_frame(writer, op, &payload).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(server_addr); // unblock accept
            return;
        }
    }
}

/// Maps a catalog lookup failure to its wire category.
fn catalog_error(e: CatalogError) -> Response {
    let code = match &e {
        CatalogError::UnknownIndex(_) => ErrorCode::UnknownIndex,
        CatalogError::Open { .. } | CatalogError::Scan { .. } => ErrorCode::Internal,
    };
    Response::Error { code, message: e.to_string() }
}

/// Maps a service-layer failure to its wire category.
fn service_error(e: ServiceError) -> Response {
    let code = match &e {
        ServiceError::Overloaded { .. } => ErrorCode::Overloaded,
        ServiceError::StrategyNotBuilt(_) => ErrorCode::StrategyNotBuilt,
        ServiceError::ShuttingDown => ErrorCode::ShuttingDown,
        ServiceError::DeadlineExceeded | ServiceError::Canceled => ErrorCode::Internal,
    };
    Response::Error { code, message: e.to_string() }
}

/// Executes one decoded request against the catalog. Pure
/// request-in/response-out — no socket state — so tests can drive it
/// directly.
pub fn handle_request(catalog: &Catalog, req: &Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShutdownAck,
        Request::CatalogList => {
            let mut out = String::new();
            for e in catalog.entries() {
                out.push_str(&e.name);
                out.push('\t');
                out.push_str(if e.attached { "attached" } else { "registered" });
                out.push('\n');
            }
            Response::Text(out)
        }
        Request::Query { index, xpath, strategy } => {
            let svc = match catalog.get(index) {
                Ok(svc) => svc,
                Err(e) => return catalog_error(e),
            };
            let strategy: Strategy = match strategy.parse() {
                Ok(s) => s,
                Err(_) => {
                    return Response::Error {
                        code: ErrorCode::Malformed,
                        message: format!("unknown strategy label {strategy:?}"),
                    }
                }
            };
            let twig = match parse_xpath(xpath) {
                Ok(t) => t,
                Err(e) => {
                    return Response::Error { code: ErrorCode::BadQuery, message: e.to_string() }
                }
            };
            match svc.execute(&twig, strategy) {
                Ok(answer) => Response::Answer {
                    strategy: answer.strategy.label().to_owned(),
                    plan: format!("{:?}", answer.plan),
                    from_cache: answer.from_cache,
                    micros: answer.metrics.elapsed.as_micros() as u64,
                    ids: answer.ids.iter().copied().collect(),
                },
                Err(e) => service_error(e),
            }
        }
        Request::Explain { index, xpath } => {
            let svc = match catalog.get(index) {
                Ok(svc) => svc,
                Err(e) => return catalog_error(e),
            };
            let twig = match parse_xpath(xpath) {
                Ok(t) => t,
                Err(e) => {
                    return Response::Error { code: ErrorCode::BadQuery, message: e.to_string() }
                }
            };
            match svc.with_engine(|e| e.explain(&twig)) {
                Ok(ex) => {
                    let mut out =
                        format!("plan: {:?} ({} steps)\n", ex.plan.kind, ex.plan.steps.len());
                    for c in &ex.choices {
                        out.push_str(&format!(
                            "{:8} est_page_reads={:.1} est_probes={:.1} est_rows={:.1}\n",
                            c.strategy.label(),
                            c.est_page_reads,
                            c.est_probes,
                            c.est_rows
                        ));
                    }
                    Response::Text(out)
                }
                Err(e) => Response::Error { code: ErrorCode::BadQuery, message: e.to_string() },
            }
        }
        Request::Update { index, ops } => {
            let svc = match catalog.get(index) {
                Ok(svc) => svc,
                Err(e) => return catalog_error(e),
            };
            let resolved = match resolve_ops(&svc, ops) {
                Ok(resolved) => resolved,
                Err(resp) => return resp,
            };
            let generation = svc.apply_update(resolved);
            Response::UpdateAck { generation }
        }
        Request::Metrics { index } => match catalog.get(index) {
            Ok(svc) => Response::Text(svc.metrics_text()),
            Err(e) => catalog_error(e),
        },
        Request::Stats { index } => match catalog.get(index) {
            Ok(svc) => Response::Text(svc.stats().to_json("")),
            Err(e) => catalog_error(e),
        },
    }
}

/// Resolves wire ops (tag *names*) into engine ops (`TagId`s) through
/// the target index's dictionary. A name the document never contained
/// is a typed `UnknownTag` error — the wire cannot intern new tags,
/// because `TagId` assignment is an engine-build detail (a documented
/// limitation: updates extend existing vocabularies only).
fn resolve_ops(svc: &TwigService, ops: &[WireOp]) -> Result<Vec<UpdateOp>, Response> {
    svc.with_engine(|engine| {
        let dict = engine.forest().dict();
        ops.iter()
            .map(|op| {
                let tags = op
                    .tags
                    .iter()
                    .map(|name| {
                        dict.lookup(name).ok_or_else(|| Response::Error {
                            code: ErrorCode::UnknownTag,
                            message: format!("unknown tag {name:?}"),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if tags.len() != op.ids.len() {
                    return Err(Response::Error {
                        code: ErrorCode::Malformed,
                        message: format!("op has {} tags but {} ids", tags.len(), op.ids.len()),
                    });
                }
                Ok(if op.insert {
                    UpdateOp::InsertPath { tags, ids: op.ids.clone(), value: op.value.clone() }
                } else {
                    UpdateOp::DeletePath { tags, ids: op.ids.clone(), value: op.value.clone() }
                })
            })
            .collect()
    })
}
