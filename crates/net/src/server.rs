//! The TCP server: an accept loop, one thread per connection, and the
//! request handler that bridges wire messages onto the catalog.
//!
//! Threading model: each connection's thread *is* its dispatcher —
//! requests run on it via [`TwigService::execute`] (the service's
//! direct-dispatch door), so the server adds no queue of its own, and
//! back-pressure is exactly the service's admission budget: when it is
//! exhausted the client sees a typed `Overloaded` response immediately
//! instead of a silently growing backlog.
//!
//! Error discipline per connection: a payload that *decodes wrong* gets
//! a typed `Malformed` response and the connection keeps serving
//! (framing is intact); a frame that *frames wrong* (bad magic,
//! oversized length) gets the typed response and then the connection is
//! dropped, because byte alignment is unrecoverable.
//!
//! Observability: every connection is journaled (`ConnOpen`/`ConnClose`
//! with frame/byte/error accounting), requests wrapped in the v2 trace
//! envelope thread their [`RequestCtx`] into the service so slow-query
//! records carry the request id + peer, and the optional access log
//! writes one line per request to stderr.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xtwig_core::parse_xpath;
use xtwig_core::Strategy;
use xtwig_service::{
    Catalog, CatalogError, Event, RequestCtx, ServiceError, TwigService, UpdateOp,
};

use crate::frame::{read_frame, write_frame, FrameError, FRAME_OVERHEAD};
use crate::proto::{ErrorCode, Request, Response, WireEvent, WireOp};

/// Largest `Events` page the server will serve, whatever the client
/// asked for.
const MAX_EVENT_PAGE: usize = 1024;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Per-connection read timeout: a peer idle longer than this is
    /// disconnected so it cannot pin a thread forever. `None` disables
    /// the timeout (default 300 s).
    pub idle_timeout: Option<Duration>,
    /// Write one access-log line per request to stderr (default off).
    pub access_log: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { idle_timeout: Some(Duration::from_secs(300)), access_log: false }
    }
}

/// Per-connection accounting, reported in the `ConnClose` event.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    /// Frames read from the peer.
    pub frames_in: u64,
    /// Bytes read from the peer (frame headers included).
    pub bytes_in: u64,
    /// Frames written to the peer.
    pub frames_out: u64,
    /// Bytes written to the peer (frame headers included).
    pub bytes_out: u64,
    /// Error responses sent (typed failures, not transport faults).
    pub errors: u64,
}

/// A running TCP front end over a [`Catalog`].
pub struct Server {
    listener: TcpListener,
    catalog: Arc<Catalog>,
    options: ServerOptions,
    stop: Arc<AtomicBool>,
    /// Stream clones for every live connection, so shutdown can unblock
    /// readers parked in `read_frame`.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

/// A handle that can stop a [`Server`] from another thread (the server
/// itself blocks in [`Server::run`]).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and unblocks the accept loop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it awake.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) over the
    /// given catalog, with default options.
    pub fn bind(addr: &str, catalog: Arc<Catalog>) -> std::io::Result<Server> {
        Server::bind_with(addr, catalog, ServerOptions::default())
    }

    /// Binds with explicit [`ServerOptions`].
    pub fn bind_with(
        addr: &str,
        catalog: Arc<Catalog>,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            catalog,
            options,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle { addr: self.local_addr()?, stop: self.stop.clone() })
    }

    /// Serves until a client sends `Shutdown` or [`ServerHandle::stop`]
    /// fires; then closes every live connection, joins their threads,
    /// and returns.
    pub fn run(self) -> std::io::Result<()> {
        let mut joins = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.stop.load(Ordering::SeqCst) {
                break; // the wake-up connection itself, or raced stop
            }
            if let Ok(clone) = stream.try_clone() {
                self.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
            }
            let catalog = self.catalog.clone();
            let stop = self.stop.clone();
            let addr = self.local_addr()?;
            let options = self.options.clone();
            joins.push(std::thread::spawn(move || {
                serve_connection(stream, &catalog, &stop, addr, &options);
            }));
        }
        // Unblock every connection thread still parked in read_frame.
        for conn in self.conns.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for j in joins {
            let _ = j.join();
        }
        Ok(())
    }
}

/// One connection's serve loop; returns when the peer hangs up, framing
/// is lost, or shutdown begins. Journals the connection's lifecycle and
/// final frame/byte accounting.
fn serve_connection(
    stream: TcpStream,
    catalog: &Catalog,
    stop: &Arc<AtomicBool>,
    server_addr: SocketAddr,
    options: &ServerOptions,
) {
    let events = catalog.events();
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown".to_owned());
    // Never let one stuck peer pin a thread forever — and if the OS
    // refuses the timeout, say so in the journal instead of serving an
    // unbounded connection silently.
    if let Err(e) = stream.set_read_timeout(options.idle_timeout) {
        events.emit(Event::ServerError {
            detail: format!("set_read_timeout failed for {peer}: {e}"),
        });
    }
    let Ok(read_half) = stream.try_clone() else { return };
    // Closing on exit must be explicit: the server's shutdown registry
    // holds another clone of this stream, so merely dropping our
    // handles would leave the socket open and the peer hanging.
    let closer = stream.try_clone().ok();
    events.emit(Event::ConnOpen { peer: peer.clone() });
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut stats = ConnStats::default();
    serve_loop(&mut reader, &mut writer, catalog, stop, server_addr, options, &peer, &mut stats);
    events.emit(Event::ConnClose {
        peer,
        frames_in: stats.frames_in,
        frames_out: stats.frames_out,
        bytes_in: stats.bytes_in,
        bytes_out: stats.bytes_out,
        errors: stats.errors,
    });
    if let Some(s) = closer {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
}

/// The request/response pump; returning ends the connection.
#[allow(clippy::too_many_arguments)] // one call site; splitting would just rename the args
fn serve_loop(
    reader: &mut std::io::BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    catalog: &Catalog,
    stop: &Arc<AtomicBool>,
    server_addr: SocketAddr,
    options: &ServerOptions,
    peer: &str,
    stats: &mut ConnStats,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(reader) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return,
            Err(e @ (FrameError::BadMagic(_) | FrameError::Oversized(_))) => {
                // Typed rejection, then drop: the byte stream is no
                // longer frame-aligned, so nothing after it is
                // trustworthy.
                let resp = Response::Error { code: ErrorCode::Malformed, message: e.to_string() };
                let (op, payload) = resp.encode();
                stats.errors += 1;
                if write_frame(writer, op, &payload).is_ok() {
                    stats.frames_out += 1;
                    stats.bytes_out += (FRAME_OVERHEAD + payload.len()) as u64;
                }
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        stats.frames_in += 1;
        stats.bytes_in += (FRAME_OVERHEAD + frame.payload.len()) as u64;
        let started = Instant::now();
        let mut label = "malformed";
        let (ctx, resp, shutdown) = match Request::decode_enveloped(&frame) {
            Ok((ctx, Request::Shutdown)) => {
                label = "shutdown";
                (ctx, Response::ShutdownAck, true)
            }
            Ok((ctx, req)) => {
                label = req.label();
                let rq = RequestCtx {
                    request_id: ctx.map(|c| c.request_id).unwrap_or(0),
                    sample: ctx.map(|c| c.sample).unwrap_or(false),
                    peer: peer.to_owned(),
                };
                (ctx, handle_request_ctx(catalog, &req, &rq), false)
            }
            Err(e) => (
                // Framing held, payload didn't: answer and keep going.
                None,
                Response::Error { code: ErrorCode::Malformed, message: e.0 },
                false,
            ),
        };
        let is_error = matches!(resp, Response::Error { .. });
        if is_error {
            stats.errors += 1;
        }
        // Echo the request id back inside the envelope iff the request
        // arrived enveloped; bare v1 requests get bare v1 responses.
        let (op, payload) = match ctx {
            Some(c) => resp.encode_enveloped(c.request_id),
            None => resp.encode(),
        };
        if options.access_log {
            eprintln!(
                "[access] peer={} id={} op={} outcome={} micros={}",
                peer,
                ctx.map(|c| c.request_id).unwrap_or(0),
                label,
                if is_error { "error" } else { "ok" },
                started.elapsed().as_micros()
            );
        }
        if write_frame(writer, op, &payload).is_err() {
            return;
        }
        stats.frames_out += 1;
        stats.bytes_out += (FRAME_OVERHEAD + payload.len()) as u64;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(server_addr); // unblock accept
            return;
        }
    }
}

/// Maps a catalog lookup failure to its wire category.
fn catalog_error(e: CatalogError) -> Response {
    let code = match &e {
        CatalogError::UnknownIndex(_) => ErrorCode::UnknownIndex,
        CatalogError::Open { .. } | CatalogError::Scan { .. } => ErrorCode::Internal,
    };
    Response::Error { code, message: e.to_string() }
}

/// Maps a service-layer failure to its wire category.
fn service_error(e: ServiceError) -> Response {
    let code = match &e {
        ServiceError::Overloaded { .. } => ErrorCode::Overloaded,
        ServiceError::StrategyNotBuilt(_) => ErrorCode::StrategyNotBuilt,
        ServiceError::ShuttingDown => ErrorCode::ShuttingDown,
        ServiceError::DeadlineExceeded | ServiceError::Canceled => ErrorCode::Internal,
    };
    Response::Error { code, message: e.to_string() }
}

/// Executes one decoded request against the catalog with an empty
/// (local, unsampled) request context. Pure request-in/response-out —
/// no socket state — so tests can drive it directly.
pub fn handle_request(catalog: &Catalog, req: &Request) -> Response {
    handle_request_ctx(catalog, req, &RequestCtx::default())
}

/// [`handle_request`] with an explicit [`RequestCtx`]; the serve loop
/// threads the wire trace envelope (request id, sample flag) plus the
/// peer address through here so slow-query records are attributable.
pub fn handle_request_ctx(catalog: &Catalog, req: &Request, ctx: &RequestCtx) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShutdownAck,
        Request::CatalogList => {
            let mut out = String::new();
            for e in catalog.entries() {
                out.push_str(&e.name);
                out.push('\t');
                out.push_str(if e.attached { "attached" } else { "registered" });
                out.push('\n');
            }
            Response::Text(out)
        }
        Request::Query { index, xpath, strategy } => {
            let svc = match catalog.get(index) {
                Ok(svc) => svc,
                Err(e) => return catalog_error(e),
            };
            let strategy: Strategy = match strategy.parse() {
                Ok(s) => s,
                Err(_) => {
                    return Response::Error {
                        code: ErrorCode::Malformed,
                        message: format!("unknown strategy label {strategy:?}"),
                    }
                }
            };
            let twig = match parse_xpath(xpath) {
                Ok(t) => t,
                Err(e) => {
                    return Response::Error { code: ErrorCode::BadQuery, message: e.to_string() }
                }
            };
            match svc.execute_with(&twig, strategy, ctx) {
                Ok(answer) => Response::Answer {
                    strategy: answer.strategy.label().to_owned(),
                    plan: format!("{:?}", answer.plan),
                    from_cache: answer.from_cache,
                    micros: answer.metrics.elapsed.as_micros() as u64,
                    ids: answer.ids.iter().copied().collect(),
                },
                Err(e) => service_error(e),
            }
        }
        Request::Explain { index, xpath } => {
            let svc = match catalog.get(index) {
                Ok(svc) => svc,
                Err(e) => return catalog_error(e),
            };
            let twig = match parse_xpath(xpath) {
                Ok(t) => t,
                Err(e) => {
                    return Response::Error { code: ErrorCode::BadQuery, message: e.to_string() }
                }
            };
            match svc.with_engine(|e| e.explain(&twig)) {
                Ok(ex) => {
                    let mut out =
                        format!("plan: {:?} ({} steps)\n", ex.plan.kind, ex.plan.steps.len());
                    for c in &ex.choices {
                        out.push_str(&format!(
                            "{:8} est_page_reads={:.1} est_probes={:.1} est_rows={:.1}\n",
                            c.strategy.label(),
                            c.est_page_reads,
                            c.est_probes,
                            c.est_rows
                        ));
                    }
                    Response::Text(out)
                }
                Err(e) => Response::Error { code: ErrorCode::BadQuery, message: e.to_string() },
            }
        }
        Request::Update { index, ops } => {
            let svc = match catalog.get(index) {
                Ok(svc) => svc,
                Err(e) => return catalog_error(e),
            };
            let resolved = match resolve_ops(&svc, ops) {
                Ok(resolved) => resolved,
                Err(resp) => return resp,
            };
            let generation = svc.apply_update(resolved);
            Response::UpdateAck { generation }
        }
        Request::Metrics { index } => match catalog.get(index) {
            Ok(svc) => Response::Text(svc.metrics_text()),
            Err(e) => catalog_error(e),
        },
        Request::Stats { index } => match catalog.get(index) {
            Ok(svc) => Response::Text(svc.stats().to_json("")),
            Err(e) => catalog_error(e),
        },
        Request::Trace { index, request_id } => {
            let svc = match catalog.get(index) {
                Ok(svc) => svc,
                Err(e) => return catalog_error(e),
            };
            match svc.find_trace(*request_id) {
                Some(rec) => {
                    let mut out = format!(
                        "request {} query {:?} strategy {} micros {} generation {}\n",
                        request_id,
                        rec.query,
                        rec.strategy.label(),
                        rec.micros,
                        rec.generation
                    );
                    out.push_str(&rec.spans);
                    Response::Text(out)
                }
                None => Response::Error {
                    code: ErrorCode::UnknownTrace,
                    message: format!(
                        "no captured trace for request {request_id} on index {index:?} \
                         (only sampled or slow requests are retained, in a bounded ring)"
                    ),
                },
            }
        }
        Request::Events { after, max } => {
            let page = (*max as usize).min(MAX_EVENT_PAGE);
            let events = catalog
                .events()
                .since(*after, page)
                .into_iter()
                .map(|e| WireEvent {
                    seq: e.seq,
                    unix_micros: e.unix_micros,
                    kind: e.event.kind().to_owned(),
                    detail: e.event.detail(),
                })
                .collect();
            Response::Events { events }
        }
    }
}

/// Resolves wire ops (tag *names*) into engine ops (`TagId`s) through
/// the target index's dictionary. A name the document never contained
/// is a typed `UnknownTag` error — the wire cannot intern new tags,
/// because `TagId` assignment is an engine-build detail (a documented
/// limitation: updates extend existing vocabularies only).
fn resolve_ops(svc: &TwigService, ops: &[WireOp]) -> Result<Vec<UpdateOp>, Response> {
    svc.with_engine(|engine| {
        let dict = engine.forest().dict();
        ops.iter()
            .map(|op| {
                let tags = op
                    .tags
                    .iter()
                    .map(|name| {
                        dict.lookup(name).ok_or_else(|| Response::Error {
                            code: ErrorCode::UnknownTag,
                            message: format!("unknown tag {name:?}"),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if tags.len() != op.ids.len() {
                    return Err(Response::Error {
                        code: ErrorCode::Malformed,
                        message: format!("op has {} tags but {} ids", tags.len(), op.ids.len()),
                    });
                }
                Ok(if op.insert {
                    UpdateOp::InsertPath { tags, ids: op.ids.clone(), value: op.value.clone() }
                } else {
                    UpdateOp::DeletePath { tags, ids: op.ids.clone(), value: op.value.clone() }
                })
            })
            .collect()
    })
}
