//! Wire messages: what the opcodes mean and how payloads are encoded.
//!
//! Payloads reuse the index file format's primitives
//! ([`ByteWriter`]/[`ByteReader`] from `xtwig_core::persist`): all
//! integers little-endian, strings length-prefixed UTF-8. Strategies
//! travel as their paper labels (`RP`, `DP`, `auto`, …) and update ops
//! carry tag *names*, not `TagId`s — ids are an engine-local interning
//! detail a client cannot know; the server resolves names through the
//! target index's dictionary and answers `UnknownTag` for names the
//! document never contained.
//!
//! Every request names the index it targets (the server fronts a
//! [`xtwig_service::Catalog`], not one engine), except the
//! catalog-wide ops `Ping`, `CatalogList`, `Events`, and `Shutdown`.
//!
//! Decoding is strict: unknown opcodes, short payloads, and trailing
//! bytes are all errors. Strictness is what makes the typed
//! `Malformed` response possible — a lenient decoder would have to
//! guess.
//!
//! ## Versioning: the trace envelope
//!
//! Protocol v2 adds request identity without disturbing v1 framing: a
//! request may arrive wrapped in an `OP_TRACED` envelope carrying a
//! [`TraceContext`] (client-stamped `request_id` + sample flag) ahead
//! of the inner opcode and payload; the response comes back wrapped in
//! `OP_TRACED_RESP` echoing the id. Bare (v1) opcodes still decode —
//! [`Request::decode_enveloped`] returns `None` for the context — so
//! old clients keep working and version handling is explicit, not
//! guessed. Envelopes do not nest; a nested envelope is malformed.

use xtwig_core::persist::{ByteReader, ByteWriter, FormatError};

use crate::frame::Frame;

/// One maintenance operation in wire form (see module docs for why
/// tags are names here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOp {
    /// `true` = insert the path, `false` = delete it.
    pub insert: bool,
    /// Schema path, root first, as tag names.
    pub tags: Vec<String>,
    /// Node-id list, parallel to `tags`.
    pub ids: Vec<u64>,
    /// Leaf value of the path's head node.
    pub value: Option<String>,
}

/// Client-stamped request identity, carried by the `OP_TRACED`
/// envelope (see the module docs on versioning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-assigned id, echoed on the response; 0 is reserved for
    /// unstamped requests and never matches a stored trace.
    pub request_id: u64,
    /// True to force a traced (span-capturing) execution retrievable
    /// via [`Request::Trace`].
    pub sample: bool,
}

/// One journal entry in wire form (see
/// [`xtwig_service::JournalEntry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEvent {
    /// Journal sequence number (gaps mean the ring dropped entries).
    pub seq: u64,
    /// Microseconds since the Unix epoch at emission.
    pub unix_micros: u64,
    /// Stable kebab-case kind (`conn-open`, `slow-query`, …).
    pub kind: String,
    /// One-line detail.
    pub detail: String,
}

impl WireEvent {
    /// `#seq [kind] detail` — mirrors the server-side rendering.
    pub fn render_text(&self) -> String {
        format!("#{} [{}] {}", self.seq, self.kind, self.detail)
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Answer `xpath` against index `index` under `strategy` (a label
    /// accepted by `Strategy::from_str`, e.g. `RP` or `auto`).
    Query {
        /// Catalog name of the target index.
        index: String,
        /// The twig query, XPath syntax.
        xpath: String,
        /// Strategy label.
        strategy: String,
    },
    /// Rank every built strategy for `xpath` (rendered text comes
    /// back).
    Explain {
        /// Catalog name of the target index.
        index: String,
        /// The twig query, XPath syntax.
        xpath: String,
    },
    /// Apply a maintenance transaction to index `index`.
    Update {
        /// Catalog name of the target index.
        index: String,
        /// The operations, applied as one committed batch.
        ops: Vec<WireOp>,
    },
    /// Prometheus text exposition for index `index`.
    Metrics {
        /// Catalog name of the target index.
        index: String,
    },
    /// Names of every registered index (`name\tattached` lines).
    CatalogList,
    /// Service-stats JSON for index `index`.
    Stats {
        /// Catalog name of the target index.
        index: String,
    },
    /// Fetch the rendered span tree of a sampled/slow request by its
    /// client-stamped id.
    Trace {
        /// Catalog name of the index the traced query ran against.
        index: String,
        /// The id the client stamped on the original request.
        request_id: u64,
    },
    /// Stream the server event journal: entries with `seq > after`,
    /// at most `max`.
    Events {
        /// Cursor — the last sequence number already seen (0 from the
        /// start).
        after: u64,
        /// Page bound (the server additionally caps this).
        max: u32,
    },
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Short op label for access logs and diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Query { .. } => "query",
            Request::Explain { .. } => "explain",
            Request::Update { .. } => "update",
            Request::Metrics { .. } => "metrics",
            Request::CatalogList => "catalog",
            Request::Stats { .. } => "stats",
            Request::Trace { .. } => "trace",
            Request::Events { .. } => "events",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// A query answer.
    Answer {
        /// Strategy that answered (concrete, even for `auto`
        /// submissions).
        strategy: String,
        /// The relational plan kind that ran (debug label).
        plan: String,
        /// Served from the result cache.
        from_cache: bool,
        /// Server-side execution time in microseconds.
        micros: u64,
        /// Distinct ids bound to the output node, ascending.
        ids: Vec<u64>,
    },
    /// Rendered text (explain rankings, metrics, stats JSON, catalog
    /// listings).
    Text(String),
    /// Update committed; the index's new invalidation generation.
    UpdateAck {
        /// Generation the update published.
        generation: u64,
    },
    /// Typed failure.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A page of the server event journal, oldest first.
    Events {
        /// The entries (empty when the cursor is caught up).
        events: Vec<WireEvent>,
    },
    /// Shutdown acknowledged; the server exits after this frame.
    ShutdownAck,
}

/// Machine-readable error categories a client can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame decoded but the payload made no sense (or an
    /// unknown opcode / trailing bytes).
    Malformed = 1,
    /// No index with that name in the catalog.
    UnknownIndex = 2,
    /// The XPath failed to parse or referenced unknown tags.
    BadQuery = 3,
    /// The named strategy is not built in the target index.
    StrategyNotBuilt = 4,
    /// Admission control shed this request; retry with backoff.
    Overloaded = 5,
    /// The server (or target service) is shutting down.
    ShuttingDown = 6,
    /// An update op named a tag the target document never contained.
    UnknownTag = 7,
    /// Anything else; the message has the detail.
    Internal = 8,
    /// No retained trace record matches the requested id (never
    /// sampled, 0, or already evicted from the ring).
    UnknownTrace = 9,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<ErrorCode, FormatError> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownIndex,
            3 => ErrorCode::BadQuery,
            4 => ErrorCode::StrategyNotBuilt,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::UnknownTag,
            8 => ErrorCode::Internal,
            9 => ErrorCode::UnknownTrace,
            other => return Err(FormatError(format!("unknown error code {other}"))),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownIndex => "unknown-index",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::StrategyNotBuilt => "strategy-not-built",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::UnknownTag => "unknown-tag",
            ErrorCode::Internal => "internal",
            ErrorCode::UnknownTrace => "unknown-trace",
        };
        f.write_str(name)
    }
}

// Request opcodes.
const OP_PING: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_EXPLAIN: u8 = 0x04;
const OP_UPDATE: u8 = 0x05;
const OP_METRICS: u8 = 0x06;
const OP_CATALOG_LIST: u8 = 0x07;
const OP_STATS: u8 = 0x08;
const OP_SHUTDOWN: u8 = 0x09;
/// v2 request envelope: `[request_id u64][sample bool][inner op u8][inner payload]`.
const OP_TRACED: u8 = 0x0a;
const OP_TRACE: u8 = 0x0b;
const OP_EVENTS: u8 = 0x0c;

// Response opcodes (high bit set).
const OP_PONG: u8 = 0x81;
const OP_ANSWER: u8 = 0x82;
const OP_TEXT: u8 = 0x83;
const OP_UPDATE_ACK: u8 = 0x84;
const OP_ERROR: u8 = 0x85;
const OP_SHUTDOWN_ACK: u8 = 0x86;
/// v2 response envelope: `[request_id u64][inner op u8][inner payload]`.
const OP_TRACED_RESP: u8 = 0x87;
const OP_EVENTS_RESP: u8 = 0x88;

fn push_wire_op(w: &mut ByteWriter, op: &WireOp) {
    w.push_bool(op.insert);
    w.push_u32(op.tags.len() as u32);
    for t in &op.tags {
        w.push_str(t);
    }
    w.push_u32(op.ids.len() as u32);
    for id in &op.ids {
        w.push_u64(*id);
    }
    match &op.value {
        Some(v) => {
            w.push_bool(true);
            w.push_str(v);
        }
        None => w.push_bool(false),
    }
}

fn read_wire_op(r: &mut ByteReader<'_>) -> Result<WireOp, FormatError> {
    let insert = r.bool()?;
    let ntags = r.u32()? as usize;
    let mut tags = Vec::with_capacity(ntags.min(1024));
    for _ in 0..ntags {
        tags.push(r.str()?);
    }
    let nids = r.u32()? as usize;
    let mut ids = Vec::with_capacity(nids.min(1024));
    for _ in 0..nids {
        ids.push(r.u64()?);
    }
    let value = if r.bool()? { Some(r.str()?) } else { None };
    Ok(WireOp { insert, tags, ids, value })
}

fn done(r: &ByteReader<'_>) -> Result<(), FormatError> {
    if r.remaining() == 0 {
        Ok(())
    } else {
        Err(FormatError(format!("{} trailing payload bytes", r.remaining())))
    }
}

impl Request {
    /// Serializes into an opcode + payload ready for
    /// [`crate::frame::write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = ByteWriter::new();
        let opcode = match self {
            Request::Ping => OP_PING,
            Request::Query { index, xpath, strategy } => {
                w.push_str(index);
                w.push_str(xpath);
                w.push_str(strategy);
                OP_QUERY
            }
            Request::Explain { index, xpath } => {
                w.push_str(index);
                w.push_str(xpath);
                OP_EXPLAIN
            }
            Request::Update { index, ops } => {
                w.push_str(index);
                w.push_u32(ops.len() as u32);
                for op in ops {
                    push_wire_op(&mut w, op);
                }
                OP_UPDATE
            }
            Request::Metrics { index } => {
                w.push_str(index);
                OP_METRICS
            }
            Request::CatalogList => OP_CATALOG_LIST,
            Request::Stats { index } => {
                w.push_str(index);
                OP_STATS
            }
            Request::Trace { index, request_id } => {
                w.push_str(index);
                w.push_u64(*request_id);
                OP_TRACE
            }
            Request::Events { after, max } => {
                w.push_u64(*after);
                w.push_u32(*max);
                OP_EVENTS
            }
            Request::Shutdown => OP_SHUTDOWN,
        };
        (opcode, w.finish())
    }

    /// [`Request::encode`] wrapped in the v2 trace envelope.
    pub fn encode_enveloped(&self, ctx: TraceContext) -> (u8, Vec<u8>) {
        let (inner_op, inner_payload) = self.encode();
        let mut w = ByteWriter::new();
        w.push_u64(ctx.request_id);
        w.push_bool(ctx.sample);
        w.push_u8(inner_op);
        let mut payload = w.finish();
        payload.extend_from_slice(&inner_payload);
        (OP_TRACED, payload)
    }

    /// The opcode dispatch both entry points share. Reads one request
    /// body off `r` without the trailing-bytes check (the caller owns
    /// that, since an envelope nests a body inside its own payload).
    fn decode_op(opcode: u8, r: &mut ByteReader<'_>) -> Result<Request, FormatError> {
        Ok(match opcode {
            OP_PING => Request::Ping,
            OP_QUERY => Request::Query { index: r.str()?, xpath: r.str()?, strategy: r.str()? },
            OP_EXPLAIN => Request::Explain { index: r.str()?, xpath: r.str()? },
            OP_UPDATE => {
                let index = r.str()?;
                let n = r.u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(read_wire_op(r)?);
                }
                Request::Update { index, ops }
            }
            OP_METRICS => Request::Metrics { index: r.str()? },
            OP_CATALOG_LIST => Request::CatalogList,
            OP_STATS => Request::Stats { index: r.str()? },
            OP_TRACE => Request::Trace { index: r.str()?, request_id: r.u64()? },
            OP_EVENTS => Request::Events { after: r.u64()?, max: r.u32()? },
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(FormatError(format!("unknown request opcode {other:#04x}"))),
        })
    }

    /// Decodes a received bare (v1) frame. Any failure here becomes a
    /// [`ErrorCode::Malformed`] response on the server.
    pub fn decode(frame: &Frame) -> Result<Request, FormatError> {
        let mut r = ByteReader::new(&frame.payload);
        let req = Request::decode_op(frame.opcode, &mut r)?;
        done(&r)?;
        Ok(req)
    }

    /// Decodes a frame that may carry the v2 trace envelope: returns
    /// `Some(ctx)` for enveloped requests, `None` for bare v1 ones.
    /// Nested envelopes are malformed.
    pub fn decode_enveloped(frame: &Frame) -> Result<(Option<TraceContext>, Request), FormatError> {
        if frame.opcode != OP_TRACED {
            return Ok((None, Request::decode(frame)?));
        }
        let mut r = ByteReader::new(&frame.payload);
        let request_id = r.u64()?;
        let sample = r.bool()?;
        let inner_op = r.u8()?;
        if inner_op == OP_TRACED {
            return Err(FormatError("nested trace envelope".to_owned()));
        }
        let req = Request::decode_op(inner_op, &mut r)?;
        done(&r)?;
        Ok((Some(TraceContext { request_id, sample }), req))
    }
}

impl Response {
    /// Serializes into an opcode + payload ready for
    /// [`crate::frame::write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = ByteWriter::new();
        let opcode = match self {
            Response::Pong => OP_PONG,
            Response::Answer { strategy, plan, from_cache, micros, ids } => {
                w.push_str(strategy);
                w.push_str(plan);
                w.push_bool(*from_cache);
                w.push_u64(*micros);
                w.push_u32(ids.len() as u32);
                for id in ids {
                    w.push_u64(*id);
                }
                OP_ANSWER
            }
            Response::Text(text) => {
                w.push_str(text);
                OP_TEXT
            }
            Response::UpdateAck { generation } => {
                w.push_u64(*generation);
                OP_UPDATE_ACK
            }
            Response::Error { code, message } => {
                w.push_u8(*code as u8);
                w.push_str(message);
                OP_ERROR
            }
            Response::Events { events } => {
                w.push_u32(events.len() as u32);
                for e in events {
                    w.push_u64(e.seq);
                    w.push_u64(e.unix_micros);
                    w.push_str(&e.kind);
                    w.push_str(&e.detail);
                }
                OP_EVENTS_RESP
            }
            Response::ShutdownAck => OP_SHUTDOWN_ACK,
        };
        (opcode, w.finish())
    }

    /// [`Response::encode`] wrapped in the v2 envelope echoing
    /// `request_id`.
    pub fn encode_enveloped(&self, request_id: u64) -> (u8, Vec<u8>) {
        let (inner_op, inner_payload) = self.encode();
        let mut w = ByteWriter::new();
        w.push_u64(request_id);
        w.push_u8(inner_op);
        let mut payload = w.finish();
        payload.extend_from_slice(&inner_payload);
        (OP_TRACED_RESP, payload)
    }

    fn decode_op(opcode: u8, r: &mut ByteReader<'_>) -> Result<Response, FormatError> {
        Ok(match opcode {
            OP_PONG => Response::Pong,
            OP_ANSWER => {
                let strategy = r.str()?;
                let plan = r.str()?;
                let from_cache = r.bool()?;
                let micros = r.u64()?;
                let n = r.u32()? as usize;
                let mut ids = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    ids.push(r.u64()?);
                }
                Response::Answer { strategy, plan, from_cache, micros, ids }
            }
            OP_TEXT => Response::Text(r.str()?),
            OP_UPDATE_ACK => Response::UpdateAck { generation: r.u64()? },
            OP_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)?;
                Response::Error { code, message: r.str()? }
            }
            OP_EVENTS_RESP => {
                let n = r.u32()? as usize;
                let mut events = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    events.push(WireEvent {
                        seq: r.u64()?,
                        unix_micros: r.u64()?,
                        kind: r.str()?,
                        detail: r.str()?,
                    });
                }
                Response::Events { events }
            }
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            other => return Err(FormatError(format!("unknown response opcode {other:#04x}"))),
        })
    }

    /// Decodes a received bare (v1) frame.
    pub fn decode(frame: &Frame) -> Result<Response, FormatError> {
        let mut r = ByteReader::new(&frame.payload);
        let resp = Response::decode_op(frame.opcode, &mut r)?;
        done(&r)?;
        Ok(resp)
    }

    /// Decodes a frame that may carry the v2 envelope: returns
    /// `Some(request_id)` when enveloped, `None` for bare v1 frames.
    pub fn decode_enveloped(frame: &Frame) -> Result<(Option<u64>, Response), FormatError> {
        if frame.opcode != OP_TRACED_RESP {
            return Ok((None, Response::decode(frame)?));
        }
        let mut r = ByteReader::new(&frame.payload);
        let request_id = r.u64()?;
        let inner_op = r.u8()?;
        if inner_op == OP_TRACED_RESP {
            return Err(FormatError("nested trace envelope".to_owned()));
        }
        let resp = Response::decode_op(inner_op, &mut r)?;
        done(&r)?;
        Ok((Some(request_id), resp))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let (opcode, payload) = req.encode();
        let back = Request::decode(&Frame { opcode, payload }).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let (opcode, payload) = resp.encode();
        let back = Response::decode(&Frame { opcode, payload }).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Query {
            index: "xmark".into(),
            xpath: "//author[fn='jane']".into(),
            strategy: "auto".into(),
        });
        roundtrip_request(Request::Explain { index: "a".into(), xpath: "//b".into() });
        roundtrip_request(Request::Update {
            index: "a".into(),
            ops: vec![
                WireOp {
                    insert: true,
                    tags: vec!["book".into(), "title".into()],
                    ids: vec![900, 901],
                    value: Some("Twigs".into()),
                },
                WireOp { insert: false, tags: vec!["book".into()], ids: vec![900], value: None },
            ],
        });
        roundtrip_request(Request::Metrics { index: "a".into() });
        roundtrip_request(Request::CatalogList);
        roundtrip_request(Request::Stats { index: "a".into() });
        roundtrip_request(Request::Trace { index: "a".into(), request_id: 99 });
        roundtrip_request(Request::Events { after: 12, max: 64 });
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Answer {
            strategy: "RP".into(),
            plan: "Merge".into(),
            from_cache: true,
            micros: 42,
            ids: vec![1, 5, 9],
        });
        roundtrip_response(Response::Text("xtwig_queries_submitted_total 3\n".into()));
        roundtrip_response(Response::UpdateAck { generation: 7 });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "1024 in flight".into(),
        });
        roundtrip_response(Response::ShutdownAck);
    }

    #[test]
    fn events_response_roundtrips() {
        roundtrip_response(Response::Events { events: vec![] });
        roundtrip_response(Response::Events {
            events: vec![
                WireEvent {
                    seq: 3,
                    unix_micros: 1_700_000_000_000_000,
                    kind: "slow-query".into(),
                    detail: "request_id=7 peer=127.0.0.1:9 micros=1500 query=//a".into(),
                },
                WireEvent { seq: 4, unix_micros: 0, kind: "conn-close".into(), detail: "".into() },
            ],
        });
        let e = WireEvent { seq: 5, unix_micros: 1, kind: "conn-open".into(), detail: "p".into() };
        assert_eq!(e.render_text(), "#5 [conn-open] p");
    }

    #[test]
    fn unknown_opcodes_and_trailing_bytes_are_malformed() {
        assert!(Request::decode(&Frame { opcode: 0x7f, payload: vec![] }).is_err());
        assert!(Response::decode(&Frame { opcode: 0x01, payload: vec![] }).is_err());
        let (opcode, mut payload) = Request::Ping.encode();
        payload.push(0);
        assert!(Request::decode(&Frame { opcode, payload }).is_err(), "trailing byte");
    }

    #[test]
    fn request_envelope_roundtrips_and_bare_frames_still_decode() {
        let req = Request::Query { index: "a".into(), xpath: "//b".into(), strategy: "RP".into() };
        let ctx = TraceContext { request_id: 42, sample: true };
        let (opcode, payload) = req.encode_enveloped(ctx);
        assert_eq!(opcode, 0x0a);
        let (got_ctx, got) = Request::decode_enveloped(&Frame { opcode, payload }).unwrap();
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(got, req);
        // A bare v1 frame decodes with no context.
        let (opcode, payload) = req.encode();
        let (got_ctx, got) = Request::decode_enveloped(&Frame { opcode, payload }).unwrap();
        assert_eq!(got_ctx, None);
        assert_eq!(got, req);
        // The plain (v1) decoder refuses the envelope opcode.
        let (opcode, payload) = req.encode_enveloped(ctx);
        assert!(Request::decode(&Frame { opcode, payload }).is_err());
    }

    #[test]
    fn response_envelope_echoes_the_request_id() {
        let resp = Response::Answer {
            strategy: "DP".into(),
            plan: "Merge".into(),
            from_cache: false,
            micros: 17,
            ids: vec![2, 3],
        };
        let (opcode, payload) = resp.encode_enveloped(42);
        assert_eq!(opcode, 0x87);
        let (id, got) = Response::decode_enveloped(&Frame { opcode, payload }).unwrap();
        assert_eq!(id, Some(42));
        assert_eq!(got, resp);
        let (opcode, payload) = resp.encode();
        let (id, got) = Response::decode_enveloped(&Frame { opcode, payload }).unwrap();
        assert_eq!(id, None);
        assert_eq!(got, resp);
    }

    #[test]
    fn nested_envelopes_and_truncated_envelopes_are_malformed() {
        let (inner_op, inner_payload) =
            Request::Ping.encode_enveloped(TraceContext { request_id: 1, sample: false });
        // Hand-build an envelope whose inner opcode is the envelope
        // opcode itself.
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u64.to_le_bytes());
        payload.push(0); // sample = false
        payload.push(inner_op); // 0x0a again: nested
        payload.extend_from_slice(&inner_payload);
        assert!(Request::decode_enveloped(&Frame { opcode: 0x0a, payload }).is_err());
        // Truncated header.
        assert!(Request::decode_enveloped(&Frame { opcode: 0x0a, payload: vec![1, 2] }).is_err());
        // Trailing bytes after the inner body.
        let ctx = TraceContext { request_id: 3, sample: true };
        let (opcode, mut payload) = Request::Ping.encode_enveloped(ctx);
        payload.push(0);
        assert!(Request::decode_enveloped(&Frame { opcode, payload }).is_err());
    }
}
