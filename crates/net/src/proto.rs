//! Wire messages: what the opcodes mean and how payloads are encoded.
//!
//! Payloads reuse the index file format's primitives
//! ([`ByteWriter`]/[`ByteReader`] from `xtwig_core::persist`): all
//! integers little-endian, strings length-prefixed UTF-8. Strategies
//! travel as their paper labels (`RP`, `DP`, `auto`, …) and update ops
//! carry tag *names*, not `TagId`s — ids are an engine-local interning
//! detail a client cannot know; the server resolves names through the
//! target index's dictionary and answers `UnknownTag` for names the
//! document never contained.
//!
//! Every request names the index it targets (the server fronts a
//! [`xtwig_service::Catalog`], not one engine), except the
//! catalog-wide ops `Ping`, `CatalogList`, and `Shutdown`.
//!
//! Decoding is strict: unknown opcodes, short payloads, and trailing
//! bytes are all errors. Strictness is what makes the typed
//! `Malformed` response possible — a lenient decoder would have to
//! guess.

use xtwig_core::persist::{ByteReader, ByteWriter, FormatError};

use crate::frame::Frame;

/// One maintenance operation in wire form (see module docs for why
/// tags are names here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOp {
    /// `true` = insert the path, `false` = delete it.
    pub insert: bool,
    /// Schema path, root first, as tag names.
    pub tags: Vec<String>,
    /// Node-id list, parallel to `tags`.
    pub ids: Vec<u64>,
    /// Leaf value of the path's head node.
    pub value: Option<String>,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Answer `xpath` against index `index` under `strategy` (a label
    /// accepted by `Strategy::from_str`, e.g. `RP` or `auto`).
    Query {
        /// Catalog name of the target index.
        index: String,
        /// The twig query, XPath syntax.
        xpath: String,
        /// Strategy label.
        strategy: String,
    },
    /// Rank every built strategy for `xpath` (rendered text comes
    /// back).
    Explain {
        /// Catalog name of the target index.
        index: String,
        /// The twig query, XPath syntax.
        xpath: String,
    },
    /// Apply a maintenance transaction to index `index`.
    Update {
        /// Catalog name of the target index.
        index: String,
        /// The operations, applied as one committed batch.
        ops: Vec<WireOp>,
    },
    /// Prometheus text exposition for index `index`.
    Metrics {
        /// Catalog name of the target index.
        index: String,
    },
    /// Names of every registered index (`name\tattached` lines).
    CatalogList,
    /// Service-stats JSON for index `index`.
    Stats {
        /// Catalog name of the target index.
        index: String,
    },
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// A query answer.
    Answer {
        /// Strategy that answered (concrete, even for `auto`
        /// submissions).
        strategy: String,
        /// The relational plan kind that ran (debug label).
        plan: String,
        /// Served from the result cache.
        from_cache: bool,
        /// Server-side execution time in microseconds.
        micros: u64,
        /// Distinct ids bound to the output node, ascending.
        ids: Vec<u64>,
    },
    /// Rendered text (explain rankings, metrics, stats JSON, catalog
    /// listings).
    Text(String),
    /// Update committed; the index's new invalidation generation.
    UpdateAck {
        /// Generation the update published.
        generation: u64,
    },
    /// Typed failure.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Shutdown acknowledged; the server exits after this frame.
    ShutdownAck,
}

/// Machine-readable error categories a client can branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame decoded but the payload made no sense (or an
    /// unknown opcode / trailing bytes).
    Malformed = 1,
    /// No index with that name in the catalog.
    UnknownIndex = 2,
    /// The XPath failed to parse or referenced unknown tags.
    BadQuery = 3,
    /// The named strategy is not built in the target index.
    StrategyNotBuilt = 4,
    /// Admission control shed this request; retry with backoff.
    Overloaded = 5,
    /// The server (or target service) is shutting down.
    ShuttingDown = 6,
    /// An update op named a tag the target document never contained.
    UnknownTag = 7,
    /// Anything else; the message has the detail.
    Internal = 8,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<ErrorCode, FormatError> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownIndex,
            3 => ErrorCode::BadQuery,
            4 => ErrorCode::StrategyNotBuilt,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::UnknownTag,
            8 => ErrorCode::Internal,
            other => return Err(FormatError(format!("unknown error code {other}"))),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownIndex => "unknown-index",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::StrategyNotBuilt => "strategy-not-built",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::UnknownTag => "unknown-tag",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

// Request opcodes.
const OP_PING: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_EXPLAIN: u8 = 0x04;
const OP_UPDATE: u8 = 0x05;
const OP_METRICS: u8 = 0x06;
const OP_CATALOG_LIST: u8 = 0x07;
const OP_STATS: u8 = 0x08;
const OP_SHUTDOWN: u8 = 0x09;

// Response opcodes (high bit set).
const OP_PONG: u8 = 0x81;
const OP_ANSWER: u8 = 0x82;
const OP_TEXT: u8 = 0x83;
const OP_UPDATE_ACK: u8 = 0x84;
const OP_ERROR: u8 = 0x85;
const OP_SHUTDOWN_ACK: u8 = 0x86;

fn push_wire_op(w: &mut ByteWriter, op: &WireOp) {
    w.push_bool(op.insert);
    w.push_u32(op.tags.len() as u32);
    for t in &op.tags {
        w.push_str(t);
    }
    w.push_u32(op.ids.len() as u32);
    for id in &op.ids {
        w.push_u64(*id);
    }
    match &op.value {
        Some(v) => {
            w.push_bool(true);
            w.push_str(v);
        }
        None => w.push_bool(false),
    }
}

fn read_wire_op(r: &mut ByteReader<'_>) -> Result<WireOp, FormatError> {
    let insert = r.bool()?;
    let ntags = r.u32()? as usize;
    let mut tags = Vec::with_capacity(ntags.min(1024));
    for _ in 0..ntags {
        tags.push(r.str()?);
    }
    let nids = r.u32()? as usize;
    let mut ids = Vec::with_capacity(nids.min(1024));
    for _ in 0..nids {
        ids.push(r.u64()?);
    }
    let value = if r.bool()? { Some(r.str()?) } else { None };
    Ok(WireOp { insert, tags, ids, value })
}

fn done(r: &ByteReader<'_>) -> Result<(), FormatError> {
    if r.remaining() == 0 {
        Ok(())
    } else {
        Err(FormatError(format!("{} trailing payload bytes", r.remaining())))
    }
}

impl Request {
    /// Serializes into an opcode + payload ready for
    /// [`crate::frame::write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = ByteWriter::new();
        let opcode = match self {
            Request::Ping => OP_PING,
            Request::Query { index, xpath, strategy } => {
                w.push_str(index);
                w.push_str(xpath);
                w.push_str(strategy);
                OP_QUERY
            }
            Request::Explain { index, xpath } => {
                w.push_str(index);
                w.push_str(xpath);
                OP_EXPLAIN
            }
            Request::Update { index, ops } => {
                w.push_str(index);
                w.push_u32(ops.len() as u32);
                for op in ops {
                    push_wire_op(&mut w, op);
                }
                OP_UPDATE
            }
            Request::Metrics { index } => {
                w.push_str(index);
                OP_METRICS
            }
            Request::CatalogList => OP_CATALOG_LIST,
            Request::Stats { index } => {
                w.push_str(index);
                OP_STATS
            }
            Request::Shutdown => OP_SHUTDOWN,
        };
        (opcode, w.finish())
    }

    /// Decodes a received frame. Any failure here becomes a
    /// [`ErrorCode::Malformed`] response on the server.
    pub fn decode(frame: &Frame) -> Result<Request, FormatError> {
        let mut r = ByteReader::new(&frame.payload);
        let req = match frame.opcode {
            OP_PING => Request::Ping,
            OP_QUERY => Request::Query { index: r.str()?, xpath: r.str()?, strategy: r.str()? },
            OP_EXPLAIN => Request::Explain { index: r.str()?, xpath: r.str()? },
            OP_UPDATE => {
                let index = r.str()?;
                let n = r.u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(read_wire_op(&mut r)?);
                }
                Request::Update { index, ops }
            }
            OP_METRICS => Request::Metrics { index: r.str()? },
            OP_CATALOG_LIST => Request::CatalogList,
            OP_STATS => Request::Stats { index: r.str()? },
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(FormatError(format!("unknown request opcode {other:#04x}"))),
        };
        done(&r)?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into an opcode + payload ready for
    /// [`crate::frame::write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = ByteWriter::new();
        let opcode = match self {
            Response::Pong => OP_PONG,
            Response::Answer { strategy, plan, from_cache, micros, ids } => {
                w.push_str(strategy);
                w.push_str(plan);
                w.push_bool(*from_cache);
                w.push_u64(*micros);
                w.push_u32(ids.len() as u32);
                for id in ids {
                    w.push_u64(*id);
                }
                OP_ANSWER
            }
            Response::Text(text) => {
                w.push_str(text);
                OP_TEXT
            }
            Response::UpdateAck { generation } => {
                w.push_u64(*generation);
                OP_UPDATE_ACK
            }
            Response::Error { code, message } => {
                w.push_u8(*code as u8);
                w.push_str(message);
                OP_ERROR
            }
            Response::ShutdownAck => OP_SHUTDOWN_ACK,
        };
        (opcode, w.finish())
    }

    /// Decodes a received frame.
    pub fn decode(frame: &Frame) -> Result<Response, FormatError> {
        let mut r = ByteReader::new(&frame.payload);
        let resp = match frame.opcode {
            OP_PONG => Response::Pong,
            OP_ANSWER => {
                let strategy = r.str()?;
                let plan = r.str()?;
                let from_cache = r.bool()?;
                let micros = r.u64()?;
                let n = r.u32()? as usize;
                let mut ids = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    ids.push(r.u64()?);
                }
                Response::Answer { strategy, plan, from_cache, micros, ids }
            }
            OP_TEXT => Response::Text(r.str()?),
            OP_UPDATE_ACK => Response::UpdateAck { generation: r.u64()? },
            OP_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)?;
                Response::Error { code, message: r.str()? }
            }
            OP_SHUTDOWN_ACK => Response::ShutdownAck,
            other => return Err(FormatError(format!("unknown response opcode {other:#04x}"))),
        };
        done(&r)?;
        Ok(resp)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let (opcode, payload) = req.encode();
        let back = Request::decode(&Frame { opcode, payload }).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let (opcode, payload) = resp.encode();
        let back = Response::decode(&Frame { opcode, payload }).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Query {
            index: "xmark".into(),
            xpath: "//author[fn='jane']".into(),
            strategy: "auto".into(),
        });
        roundtrip_request(Request::Explain { index: "a".into(), xpath: "//b".into() });
        roundtrip_request(Request::Update {
            index: "a".into(),
            ops: vec![
                WireOp {
                    insert: true,
                    tags: vec!["book".into(), "title".into()],
                    ids: vec![900, 901],
                    value: Some("Twigs".into()),
                },
                WireOp { insert: false, tags: vec!["book".into()], ids: vec![900], value: None },
            ],
        });
        roundtrip_request(Request::Metrics { index: "a".into() });
        roundtrip_request(Request::CatalogList);
        roundtrip_request(Request::Stats { index: "a".into() });
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Answer {
            strategy: "RP".into(),
            plan: "Merge".into(),
            from_cache: true,
            micros: 42,
            ids: vec![1, 5, 9],
        });
        roundtrip_response(Response::Text("xtwig_queries_submitted_total 3\n".into()));
        roundtrip_response(Response::UpdateAck { generation: 7 });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "1024 in flight".into(),
        });
        roundtrip_response(Response::ShutdownAck);
    }

    #[test]
    fn unknown_opcodes_and_trailing_bytes_are_malformed() {
        assert!(Request::decode(&Frame { opcode: 0x7f, payload: vec![] }).is_err());
        assert!(Response::decode(&Frame { opcode: 0x01, payload: vec![] }).is_err());
        let (opcode, mut payload) = Request::Ping.encode();
        payload.push(0);
        assert!(Request::decode(&Frame { opcode, payload }).is_err(), "trailing byte");
    }
}
