//! # xtwig-net — serving twig queries over the network
//!
//! The paper's premise is that twig matching belongs inside a
//! production query processor; this crate is the network front end
//! that makes the serving stack reachable from another process. It is
//! deliberately std-only (the build has no crates.io access): a
//! hand-rolled length-prefixed binary protocol over TCP, in three
//! layers —
//!
//! * [`frame`] — the byte layer: `[magic][opcode][len][payload]`
//!   frames with a hard payload bound, so a garbage prefix can neither
//!   desynchronize the peer silently nor drive allocation.
//! * [`proto`] — the message layer: [`proto::Request`] /
//!   [`proto::Response`] encoded with the same `ByteWriter` /
//!   `ByteReader` primitives the index file format uses. Strict
//!   decoding (unknown opcodes and trailing bytes are errors) is what
//!   makes the typed `Malformed` response possible.
//! * [`server`] / [`client`] — the endpoints. The server fronts a
//!   [`xtwig_service::Catalog`] (many persisted `.xtwig` indexes by
//!   name, opened on demand, LRU of attached engines) and runs one
//!   thread per connection; each request executes on that thread via
//!   [`xtwig_service::TwigService::execute`], so back-pressure is the
//!   service's admission budget and an overloaded server answers with
//!   a typed `Overloaded` error the client can back off on.
//!
//! Everything the in-process service exposes crosses the wire: query
//! answers (byte-identical ids to in-process execution — the root
//! `network` integration suite asserts this for every built strategy),
//! `auto` strategy resolution, explain rankings, maintenance
//! transactions (tag *names* on the wire, resolved through the target
//! index's dictionary), Prometheus `metrics_text`, and service-stats
//! JSON.
//!
//! Requests additionally travel inside a *trace envelope* carrying a
//! client-assigned request id and a sample flag; the server echoes the
//! id, threads it into slow-query records, and serves the captured
//! span tree back over `Trace` — so a slow query seen in the event
//! journal (`Events`) is attributable end-to-end. Bare v1 frames still
//! decode, so old clients keep working.

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, WireAnswer};
pub use frame::{read_frame, write_frame, Frame, FrameError, FRAME_OVERHEAD, MAGIC, MAX_FRAME_LEN};
pub use proto::{ErrorCode, Request, Response, TraceContext, WireEvent, WireOp};
pub use server::{
    handle_request, handle_request_ctx, ConnStats, Server, ServerHandle, ServerOptions,
};
