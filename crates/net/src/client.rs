//! A blocking client for the xtwig wire protocol: one TCP connection,
//! strict request/response alternation.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{ErrorCode, Request, Response, TraceContext, WireEvent, WireOp};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection (or its timeout setup) failed.
    Connect(std::io::Error),
    /// Transport or framing failure.
    Frame(FrameError),
    /// The response frame arrived but did not decode.
    Decode(String),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Decode(m) => write!(f, "undecodable response: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A decoded query answer (the client-side view of
/// [`crate::proto::Response::Answer`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAnswer {
    /// Strategy that answered (concrete, even for `auto` requests).
    pub strategy: String,
    /// The relational plan kind that ran.
    pub plan: String,
    /// Served from the server's result cache.
    pub from_cache: bool,
    /// Server-side execution time in microseconds.
    pub micros: u64,
    /// Distinct ids bound to the output node, ascending.
    pub ids: Vec<u64>,
    /// The request id this answer was served under (echoed from the
    /// trace envelope); hand it to [`Client::trace`] if sampled.
    pub request_id: u64,
}

/// One connection to an xtwig server.
///
/// Every request is wrapped in the trace envelope with a
/// connection-local monotonically increasing request id; the server
/// echoes the id back and the client verifies it, so a desynchronized
/// response stream surfaces as a typed error instead of silent
/// misattribution.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    sample: bool,
    last_request_id: u64,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with_timeout(addr, None)
    }

    /// Connects with read/write timeouts so a wedged server cannot hang
    /// the caller (used by the CI smoke harness).
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Connect)?;
        stream.set_read_timeout(timeout).map_err(ClientError::Connect)?;
        stream.set_write_timeout(timeout).map_err(ClientError::Connect)?;
        let read_half = stream.try_clone().map_err(ClientError::Connect)?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 1,
            sample: false,
            last_request_id: 0,
        })
    }

    /// When on, every subsequent request asks the server to capture a
    /// full execution trace (retrievable via [`Client::trace`]) even if
    /// the query is not slow. Sampled queries bypass the result cache.
    pub fn set_sampling(&mut self, sample: bool) {
        self.sample = sample;
    }

    /// The id stamped on the most recent request sent on this
    /// connection (0 before the first call).
    pub fn last_request_id(&self) -> u64 {
        self.last_request_id
    }

    /// Sends one request and reads one response, wrapping the request
    /// in the trace envelope and verifying the echoed request id.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let ctx = TraceContext { request_id: self.next_id, sample: self.sample };
        self.next_id += 1;
        self.last_request_id = ctx.request_id;
        let (op, payload) = req.encode_enveloped(ctx);
        write_frame(&mut self.writer, op, &payload)?;
        let frame = read_frame(&mut self.reader)?;
        let (echoed, resp) =
            Response::decode_enveloped(&frame).map_err(|e| ClientError::Decode(e.0))?;
        if let Some(id) = echoed {
            if id != ctx.request_id {
                return Err(ClientError::Unexpected(format!(
                    "response for request {id} arrived while waiting for {}",
                    ctx.request_id
                )));
            }
        }
        Ok(resp)
    }

    fn expect_text(resp: Response) -> Result<String, ClientError> {
        match resp {
            Response::Text(t) => Ok(t),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Answers `xpath` against index `index` under `strategy` (a label
    /// like `RP` or `auto`).
    pub fn query(
        &mut self,
        index: &str,
        xpath: &str,
        strategy: &str,
    ) -> Result<WireAnswer, ClientError> {
        let req = Request::Query {
            index: index.to_owned(),
            xpath: xpath.to_owned(),
            strategy: strategy.to_owned(),
        };
        match self.call(&req)? {
            Response::Answer { strategy, plan, from_cache, micros, ids } => Ok(WireAnswer {
                strategy,
                plan,
                from_cache,
                micros,
                ids,
                request_id: self.last_request_id,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the rendered span tree captured for `request_id` on
    /// index `index` (a request that was sampled, or slow enough for
    /// the slow-query ring). `UnknownTrace` means the ring never held
    /// it or has since evicted it.
    pub fn trace(&mut self, index: &str, request_id: u64) -> Result<String, ClientError> {
        let req = Request::Trace { index: index.to_owned(), request_id };
        Self::expect_text(self.call(&req)?)
    }

    /// Reads the server event journal from cursor `after` (exclusive),
    /// at most `max` entries. Poll with the last returned `seq` as the
    /// next cursor to follow the journal.
    pub fn events(&mut self, after: u64, max: u32) -> Result<Vec<WireEvent>, ClientError> {
        match self.call(&Request::Events { after, max })? {
            Response::Events { events } => Ok(events),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The server's strategy ranking for `xpath`, rendered.
    pub fn explain(&mut self, index: &str, xpath: &str) -> Result<String, ClientError> {
        let req = Request::Explain { index: index.to_owned(), xpath: xpath.to_owned() };
        Self::expect_text(self.call(&req)?)
    }

    /// Applies a maintenance transaction; returns the new generation.
    pub fn update(&mut self, index: &str, ops: Vec<WireOp>) -> Result<u64, ClientError> {
        let req = Request::Update { index: index.to_owned(), ops };
        match self.call(&req)? {
            Response::UpdateAck { generation } => Ok(generation),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Prometheus text exposition for index `index`.
    pub fn metrics(&mut self, index: &str) -> Result<String, ClientError> {
        Self::expect_text(self.call(&Request::Metrics { index: index.to_owned() })?)
    }

    /// Service-stats JSON for index `index`.
    pub fn stats(&mut self, index: &str) -> Result<String, ClientError> {
        Self::expect_text(self.call(&Request::Stats { index: index.to_owned() })?)
    }

    /// `name\tattached|registered` lines, one per catalog entry.
    pub fn catalog(&mut self) -> Result<String, ClientError> {
        Self::expect_text(self.call(&Request::CatalogList)?)
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Sends `bytes` raw on the socket (no framing) and reads one
    /// response frame — the deliberately-malformed-input probe the CI
    /// smoke uses to check that garbage gets a typed error, not a hang.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<Response, ClientError> {
        use std::io::Write;
        self.writer.write_all(bytes).map_err(FrameError::Io)?;
        self.writer.flush().map_err(FrameError::Io)?;
        let frame = read_frame(&mut self.reader)?;
        Response::decode(&frame).map_err(|e| ClientError::Decode(e.0))
    }
}
