//! The length-prefixed frame layer: the only thing that touches raw
//! bytes on the socket.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +----------+--------+----------+---------------+
//! | magic u32| op u8  | len u32  | payload bytes |
//! | LE       |        | LE       | (len bytes)   |
//! +----------+--------+----------+---------------+
//! ```
//!
//! The magic word (`b"XTWG"`) rejects strangers talking to the port
//! before any length is trusted; the length is bounded by
//! [`MAX_FRAME_LEN`] so a hostile or corrupt prefix cannot make the
//! peer allocate gigabytes. Payload semantics live one layer up in
//! [`crate::proto`] — this module neither knows nor cares what the
//! opcode means, which is what makes it independently fuzzable.

use std::io::{Read, Write};

/// Frame magic: ASCII `XTWG`, little-endian on the wire.
pub const MAGIC: u32 = u32::from_le_bytes(*b"XTWG");

/// Upper bound on a frame payload (16 MiB). Large enough for any
/// realistic answer id-list or metrics dump; small enough that a
/// garbage length prefix cannot drive allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Header bytes per frame (magic u32 + opcode u8 + length u32), used by
/// per-connection byte accounting.
pub const FRAME_OVERHEAD: usize = 9;

/// One decoded frame: an opcode and its raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminator (see [`crate::proto`] for assignments).
    pub opcode: u8,
    /// Undecoded payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The first four bytes were not [`MAGIC`] — not our protocol.
    BadMagic(u32),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// The underlying transport failed (including mid-frame EOF, which
    /// surfaces as `UnexpectedEof`).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::BadMagic(got) => {
                write!(f, "bad frame magic {got:#010x} (expected {MAGIC:#010x})")
            }
            FrameError::Oversized(len) => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame. A partial write surfaces as `Io`; the stream is
/// unusable afterwards (framing is lost), so callers drop it.
pub fn write_frame<W: Write>(w: &mut W, opcode: u8, payload: &[u8]) -> Result<(), FrameError> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    let mut header = [0u8; 9];
    header[..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4] = opcode;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, validating magic and length before allocating.
///
/// A clean EOF *before any header byte* is [`FrameError::Closed`] (the
/// peer hung up between messages — normal); EOF anywhere later is a
/// truncated frame and surfaces as `Io(UnexpectedEof)`.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut magic = [0u8; 4];
    // First byte by hand so "closed between frames" and "died
    // mid-frame" stay distinguishable.
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => magic[0] = first[0],
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut magic[1..])?;
    let got = u32::from_le_bytes(magic);
    if got != MAGIC {
        return Err(FrameError::BadMagic(got));
    }
    let mut rest = [0u8; 5];
    r.read_exact(&mut rest)?;
    let opcode = rest[0];
    let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Frame { opcode, payload })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests assert; unwrap is the assert
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x02, b"hello").unwrap();
        write_frame(&mut buf, 0x81, b"").unwrap();
        let mut r = Cursor::new(buf);
        let a = read_frame(&mut r).unwrap();
        assert_eq!((a.opcode, a.payload.as_slice()), (0x02, b"hello".as_slice()));
        let b = read_frame(&mut r).unwrap();
        assert_eq!((b.opcode, b.payload.len()), (0x81, 0));
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn bad_magic_is_rejected_before_the_length_is_trusted() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"HTTP");
        buf.extend_from_slice(&[0x02]);
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile length
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)));
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(0x02);
        buf.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Oversized(_)));
    }

    #[test]
    fn truncated_frames_surface_as_io_not_closed() {
        // Header promises 10 bytes, stream carries 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(0x02);
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        match err {
            FrameError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            other => panic!("expected Io(UnexpectedEof), got {other}"),
        }
    }
}
