#![allow(clippy::unwrap_used)] // property tests assert via unwrap
//! Property tests for the wire frame codec and message layer: a peer
//! feeding the socket garbage — truncated frames, hostile length
//! prefixes, byte soup, drip-fed partial reads — must get an error or
//! a clean decode, never a panic or a runaway allocation. Mirrors the
//! `parser_fuzz` harness pattern.

use proptest::prelude::*;
use std::io::{Cursor, Read};
use xtwig_net::frame::{read_frame, write_frame, Frame, FrameError, MAGIC, MAX_FRAME_LEN};
use xtwig_net::proto::{Request, Response};

/// A reader that hands out at most `chunk` bytes per `read` call —
/// the interleaved-partial-delivery shape a real TCP stream produces.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk.max(1)).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic_the_frame_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = read_frame(&mut Cursor::new(&bytes));
    }

    #[test]
    fn frames_roundtrip_even_under_partial_reads(
        opcode in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..16,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, opcode, &payload).unwrap();
        let mut trickle = Trickle { data: &wire, pos: 0, chunk };
        let frame = read_frame(&mut trickle).unwrap();
        prop_assert_eq!(frame.opcode, opcode);
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn truncating_a_valid_frame_errors_instead_of_hanging_or_panicking(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        cut_pct in 0usize..100,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0x02, &payload).unwrap();
        let cut = (wire.len() - 1) * cut_pct / 100; // always strictly short
        let err = read_frame(&mut Cursor::new(&wire[..cut])).unwrap_err();
        match err {
            FrameError::Closed => prop_assert_eq!(cut, 0, "Closed only before any byte"),
            FrameError::Io(e) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => prop_assert!(false, "unexpected error: {}", other),
        }
    }

    #[test]
    fn garbage_length_prefixes_never_allocate_past_the_bound(
        len in any::<u32>(),
        opcode in any::<u8>(),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.push(opcode);
        wire.extend_from_slice(&len.to_le_bytes());
        // No payload follows the header: every outcome must be typed.
        match read_frame(&mut Cursor::new(&wire)) {
            Ok(frame) => prop_assert!(frame.payload.is_empty()),
            Err(FrameError::Oversized(n)) => prop_assert!(n > MAX_FRAME_LEN),
            Err(FrameError::Io(e)) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            Err(other) => prop_assert!(false, "unexpected error: {}", other),
        }
    }

    #[test]
    fn bad_magic_is_always_typed(
        magic in any::<u32>().prop_filter("not the real magic", |m| *m != MAGIC),
        rest in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut wire = magic.to_le_bytes().to_vec();
        wire.extend_from_slice(&rest);
        match read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::BadMagic(got)) => prop_assert_eq!(got, magic),
            Err(FrameError::Io(e)) => {
                // Fewer than 4 bytes total: died inside the magic word.
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => prop_assert!(false, "expected BadMagic, got {:?}", other.map(|f| f.opcode)),
        }
    }

    #[test]
    fn message_decoders_never_panic_on_arbitrary_frames(
        opcode in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let frame = Frame { opcode, payload };
        let _ = Request::decode(&frame);
        let _ = Response::decode(&frame);
    }

    #[test]
    fn corrupting_one_byte_of_a_valid_request_never_panics(
        index in ".{0,12}",
        xpath in ".{0,24}",
        strategy in ".{0,8}",
        flip_at in any::<usize>(),
        flip_with in 1u8..=255,
    ) {
        // Single-byte corruption of a well-formed message exercises the
        // decoder's interior length/utf8 checks, not just its opcode
        // dispatch (which pure byte-soup frames mostly bounce off).
        let (opcode, mut payload) = Request::Query { index, xpath, strategy }.encode();
        if !payload.is_empty() {
            let at = flip_at % payload.len();
            payload[at] ^= flip_with;
        }
        let frame = Frame { opcode, payload };
        if let Ok(req) = Request::decode(&frame) {
            let (op2, payload2) = req.encode();
            prop_assert_eq!(op2, frame.opcode);
            prop_assert_eq!(payload2, frame.payload);
        }
    }

    #[test]
    fn truncating_a_valid_request_payload_is_typed_not_a_panic(
        index in ".{1,12}",
        xpath in ".{1,24}",
        keep_pct in 0usize..100,
    ) {
        let (opcode, payload) =
            Request::Explain { index, xpath }.encode();
        let keep = payload.len() * keep_pct / 100; // always strictly short
        let frame = Frame { opcode, payload: payload[..keep].to_vec() };
        // Interior truncation must surface as a decode error, never as
        // a slice-out-of-bounds panic.
        prop_assert!(Request::decode(&frame).is_err());
    }

    #[test]
    fn corrupting_a_valid_answer_response_never_panics(
        ids in proptest::collection::vec(any::<u64>(), 0..16),
        micros in any::<u64>(),
        from_cache in any::<bool>(),
        flip_at in any::<usize>(),
        flip_with in 1u8..=255,
    ) {
        // The Answer encoding carries counted u64 lists — the decode
        // path where a corrupted count could over-read if unchecked.
        let resp = Response::Answer {
            strategy: "RP".to_owned(),
            plan: "RootPaths".to_owned(),
            from_cache,
            micros,
            ids,
        };
        let (opcode, mut payload) = resp.encode();
        if !payload.is_empty() {
            let at = flip_at % payload.len();
            payload[at] ^= flip_with;
        }
        let _ = Response::decode(&Frame { opcode, payload });
    }

    #[test]
    fn decoded_requests_reencode_identically(
        opcode in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Any frame the decoder accepts must survive a re-encode
        // round-trip — the codec cannot silently normalize.
        let frame = Frame { opcode, payload };
        if let Ok(req) = Request::decode(&frame) {
            let (op2, payload2) = req.encode();
            prop_assert_eq!(op2, frame.opcode);
            prop_assert_eq!(payload2, frame.payload);
        }
    }
}
